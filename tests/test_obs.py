"""Observability subsystem tests (repro.obs).

The load-bearing guarantees:

* **parity** — the metrics hub's totals reconcile exactly with the
  legacy ``RunResult`` counters (``energy_counters`` /
  ``protocol_stats``), because both read the same underlying state;
* **bit-identity** — an observed run returns a ``RunResult`` identical
  to an unobserved one (sampling events are subtracted, hooks are pure
  reads), so enabling observability can never perturb science;
* **trace round-trip** — the exported Chrome trace-event JSON is valid,
  Perfetto-shaped and time-ordered;
* **telemetry reconciliation** — every cell in the ``telemetry.json``
  sidecar resolves to a stored result.
"""

import dataclasses
import json

import pytest

from repro.common.config import ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.obs import (
    Histogram, MetricsHub, ObsSession, PhaseSampler, SimTrace,
    SweepTelemetry, load_telemetry)
from repro.workloads import build_workload


@pytest.fixture(scope="module")
def tiny_cell():
    """One observed and one unobserved run of the same tiny cell."""
    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    base = simulate(build_workload("radix", scale), "DBypFull", config)
    obs = ObsSession(sample_interval=2000)
    result = simulate(build_workload("radix", scale), "DBypFull", config,
                      obs=obs)
    return base, result, obs


# ----------------------------------------------------------------------
# MetricsHub unit behavior
# ----------------------------------------------------------------------

class TestMetricsHub:
    def test_counter_and_gauge_push(self):
        hub = MetricsHub()
        hub.counter("retries").inc()
        hub.counter("retries").inc(2, tile=3)
        hub.gauge("depth").set(7)
        assert hub.total("retries") == 3
        assert hub.get("retries").snapshot() == {"": 1.0, "tile=3": 2.0}
        assert hub.total("depth") == 7

    def test_counters_only_go_up(self):
        hub = MetricsHub()
        with pytest.raises(ValueError):
            hub.counter("n").inc(-1)

    def test_kind_conflicts_rejected(self):
        hub = MetricsHub()
        hub.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            hub.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            hub.histogram("x")

    def test_pull_sources_read_at_snapshot_time(self):
        hub = MetricsHub()
        state = {"n": 1}
        hub.add_pull("live", lambda: state["n"])
        assert hub.total("live") == 1
        state["n"] = 42
        assert hub.total("live") == 42   # not frozen at registration

    def test_unknown_metric_suggests_near_misses(self):
        hub = MetricsHub()
        hub.counter("noc_flit_hops")
        with pytest.raises(KeyError, match="noc_flit_hops"):
            hub.get("noc_flit_hop")

    def test_histogram_buckets_cumulative(self):
        h = Histogram("lat", buckets=(10, 100))
        h.observe(5)
        h.observe(50)
        h.observe(5000)
        snap = h.snapshot()[""]
        assert snap["count"] == 3
        assert snap["sum"] == 5055
        assert snap["buckets"] == {"10": 1.0, "100": 2.0}
        assert h.total() == 3            # observation count, scalar


# ----------------------------------------------------------------------
# Parity and bit-identity on a real cell
# ----------------------------------------------------------------------

class TestObservedRunParity:
    def test_observed_result_bit_identical(self, tiny_cell):
        base, result, _obs = tiny_cell
        assert dataclasses.asdict(base) == dataclasses.asdict(result)

    def test_hub_matches_energy_counters(self, tiny_cell):
        _base, result, obs = tiny_cell
        for key, value in result.energy_counters.items():
            assert key in obs.hub, f"no hub metric for counter {key}"
            assert obs.hub.total(key) == value, key

    def test_hub_matches_protocol_stats(self, tiny_cell):
        _base, result, obs = tiny_cell
        for key, value in result.protocol_stats.items():
            assert obs.hub.total(f"proto_{key}") == value, key

    def test_sampler_produced_a_time_series(self, tiny_cell):
        _base, result, obs = tiny_cell
        assert len(obs.samples) > 2
        cycles = [s["cycle"] for s in obs.samples]
        assert cycles == sorted(cycles)
        # Cumulative counters are monotone across samples.
        series = obs.sampler.series("engine_events")
        values = [v for _c, v in series]
        assert values == sorted(values)

    def test_overhead_events_accounted(self, tiny_cell):
        _base, result, obs = tiny_cell
        assert obs.overhead_events == obs.sampler.ticks > 0
        # The subtraction happened: the engine ran events+ticks total.
        assert obs.hub.total("engine_events") == (
            result.events + obs.overhead_events)

    def test_session_is_single_use(self, tiny_cell):
        _base, _result, obs = tiny_cell
        scale = ScaleConfig.tiny()
        with pytest.raises(RuntimeError, match="one run"):
            simulate(build_workload("radix", scale), "MESI",
                     scaled_system(scale), obs=obs)


# ----------------------------------------------------------------------
# Trace export round-trip
# ----------------------------------------------------------------------

class TestTraceExport:
    def test_chrome_json_round_trip(self, tiny_cell, tmp_path):
        _base, _result, obs = tiny_cell
        path = tmp_path / "trace.json"
        obs.export(path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"
        assert data["otherData"]["workload"] == "radix"
        assert data["otherData"]["protocol"] == "DBypFull"
        assert events, "trace must not be empty"
        for event in events:
            # X/i/C/M plus the s/t/f flow phases linking miss spans.
            assert event["ph"] in ("X", "i", "C", "M", "s", "t", "f")
            assert isinstance(event["name"], str)
        spans = [e for e in events if e["ph"] == "X"]
        assert spans, "expected complete spans"
        for span in spans:
            assert span["dur"] >= 0
            assert span["ts"] >= 0

    def test_events_time_ordered(self, tiny_cell):
        _base, _result, obs = tiny_cell
        data = obs.chrome_trace()
        ts = [e["ts"] for e in data["traceEvents"] if e["ph"] != "M"]
        assert ts == sorted(ts)

    def test_barrier_phases_cover_the_run(self, tiny_cell):
        _base, _result, obs = tiny_cell
        data = obs.chrome_trace()
        phases = [e for e in data["traceEvents"]
                  if e.get("cat") == "barrier"]
        assert len(phases) == obs.phases
        # Phases are contiguous: each starts where the previous ended.
        for prev, cur in zip(phases, phases[1:]):
            assert cur["ts"] == prev["ts"] + prev["dur"]

    def test_dram_spans_present(self, tiny_cell):
        _base, result, obs = tiny_cell
        data = obs.chrome_trace()
        drams = [e for e in data["traceEvents"] if e.get("cat") == "dram"]
        # One span per serviced request, whole run (reads + writes).
        assert len(drams) == (result.dram_stats["reads"]
                              + result.dram_stats["writes"])

    def test_ring_buffer_drops_oldest(self):
        trace = SimTrace(capacity=4)
        for i in range(10):
            trace.instant(f"e{i}", "t", ts=i)
        events = trace.events()
        assert len(events) == 4
        assert trace.dropped == 6
        assert [e["name"] for e in events] == ["e6", "e7", "e8", "e9"]


# ----------------------------------------------------------------------
# Sampler scheduling
# ----------------------------------------------------------------------

class TestPhaseSampler:
    def test_sampler_does_not_keep_queue_alive(self):
        from repro.engine.events import EventQueue
        queue = EventQueue()
        hub = MetricsHub()
        sampler = PhaseSampler(queue, hub, interval=10)
        sampler.start()
        queue.schedule_call(100, lambda: None)
        queue.run()                      # must terminate
        assert queue.pending == 0
        assert sampler.ticks >= 1

    def test_sample_now_dedupes_same_cycle(self):
        from repro.engine.events import EventQueue
        queue = EventQueue()
        sampler = PhaseSampler(queue, MetricsHub(), interval=10)
        sampler.sample_now()
        sampler.sample_now()
        assert len(sampler.samples) == 1
        assert sampler.ticks == 0        # no scheduler events consumed

    def test_overflow_interval_identical_heap_vs_wheel(self):
        """Sampler re-arms beyond the wheel's 4096-cycle window.

        With ``sample_interval > 4096`` every re-arm lands in the
        wheel's overflow heap instead of a bucket; the observed run
        must stay bit-identical to the heap scheduler's, with the
        identical sampled counter tracks (same cycles, same values).
        """
        from repro.engine.events import _WHEEL_SIZE
        interval = _WHEEL_SIZE + 1000    # every re-arm overflows
        scale = ScaleConfig.tiny()
        cells = {}
        for scheduler in ("heap", "wheel"):
            config = dataclasses.replace(scaled_system(scale),
                                         scheduler=scheduler)
            obs = ObsSession(sample_interval=interval, trace=False)
            result = simulate(build_workload("radix", scale), "MESI",
                              config, obs=obs)
            cells[scheduler] = (result, obs)
        heap_result, heap_obs = cells["heap"]
        wheel_result, wheel_obs = cells["wheel"]
        assert (dataclasses.asdict(wheel_result)
                == dataclasses.asdict(heap_result))
        assert wheel_obs.overhead_events == heap_obs.overhead_events > 0
        assert wheel_obs.samples == heap_obs.samples
        for name in ("engine_events", "noc_flit_hops"):
            assert (wheel_obs.sampler.series(name)
                    == heap_obs.sampler.series(name)), name


# ----------------------------------------------------------------------
# Timeline figure
# ----------------------------------------------------------------------

class TestTimeline:
    def test_renders_heat_strips(self, tiny_cell):
        from repro.analysis.timeline import figure_timeline
        _base, _result, obs = tiny_cell
        fig = figure_timeline(obs)
        text = fig.render()
        assert "timeline: radix / DBypFull" in text
        assert fig.num_tiles == 16
        assert all(len(strip) == fig.columns
                   for strip in fig.strips.values())
        assert any(any(v > 0 for v in strip)
                   for strip in fig.strips.values())

    def test_graceful_with_no_samples(self):
        from repro.analysis.timeline import figure_timeline
        obs = ObsSession()               # never attached: no samples
        fig = figure_timeline(obs)
        assert fig.columns == 1
        fig.render()                     # must not raise


# ----------------------------------------------------------------------
# Fleet telemetry
# ----------------------------------------------------------------------

class TestSweepTelemetry:
    def test_sidecar_reconciles_with_store(self, tmp_path):
        from repro.runner.jobs import expand_grid
        from repro.runner.pool import sweep
        from repro.runner.store import ResultStore
        store = ResultStore(tmp_path / "cache")
        specs = expand_grid(["radix"], ["MESI", "DeNovo"],
                            ScaleConfig.tiny())
        telemetry = SweepTelemetry(command="sweep")
        sweep(specs, jobs=1, store=store, progress=telemetry.progress)
        path = telemetry.write(store.sidecar_path())
        data = load_telemetry(path)
        assert data["schema_version"] == 1
        assert data["completed_cells"] == data["total_cells"] == 2
        assert len(data["cells"]) == 2
        for cell in data["cells"]:
            # Every telemetry record must resolve to a stored result.
            result = store.load(cell["workload"], cell["protocol"],
                                cell["store_key"])
            assert result is not None
            assert result.protocol == cell["protocol"]
            assert cell["elapsed_s"] >= 0
            assert not cell["from_cache"]

    def test_cache_hits_marked_on_second_sweep(self, tmp_path):
        from repro.runner.jobs import expand_grid
        from repro.runner.pool import sweep
        from repro.runner.store import ResultStore
        store = ResultStore(tmp_path / "cache")
        specs = expand_grid(["radix"], ["MESI"], ScaleConfig.tiny())
        sweep(specs, jobs=1, store=store)
        telemetry = SweepTelemetry()
        sweep(specs, jobs=1, store=store, progress=telemetry.progress)
        assert telemetry.cache_hits == 1
        assert telemetry.cells[0]["from_cache"]

    def test_sidecar_excluded_from_store_entries(self, tmp_path):
        from repro.runner.store import ResultStore
        store = ResultStore(tmp_path / "cache")
        telemetry = SweepTelemetry()
        telemetry.write(store.sidecar_path())
        assert len(store) == 0
        assert list(store.entries()) == []

    def test_eta_estimate(self):
        clock = iter([0.0, 10.0, 10.0, 20.0, 20.0]).__next__
        telemetry = SweepTelemetry(clock=clock, wall=lambda: 0.0)

        class Spec:
            workload, protocol, num_tiles, seed = "w", "p", 16, 1
            def store_key(self):
                return "k"

        class Outcome:
            spec = Spec()
            elapsed, attempts, from_cache = 1.0, 1, False

        telemetry.record(Outcome(), 1, 4)
        assert telemetry.eta_seconds() == pytest.approx(30.0)


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

class TestCli:
    def test_trace_command_exports_valid_json(self, tmp_path, capsys):
        from repro.runner.cli import main
        out = tmp_path / "trace.json"
        rc = main(["trace", "--workload", "fft", "--protocol", "denovo",
                   "--scale", "tiny", "-o", str(out), "--timeline"])
        assert rc == 0
        data = json.loads(out.read_text())
        assert data["traceEvents"]
        assert data["otherData"]["protocol"] == "DeNovo"
        printed = capsys.readouterr().out
        assert "perfetto" in printed.lower()
        assert "timeline: FFT / DeNovo" in printed

    def test_trace_rejects_unknown_protocol(self, capsys):
        from repro.runner.cli import main
        rc = main(["trace", "--protocol", "NoSuchProto"])
        assert rc == 2

    def test_trace_capacity_flag_warns_on_drops(self, tmp_path, capsys):
        from repro.runner.cli import main
        out = tmp_path / "trace.json"
        rc = main(["trace", "--workload", "radix", "--scale", "tiny",
                   "--trace-capacity", "64", "-o", str(out)])
        assert rc == 0
        data = json.loads(out.read_text())
        # Metadata (M) and sampler counter (C) events are synthesized
        # at export; only span/instant/flow events live in the ring.
        ring = [e for e in data["traceEvents"]
                if e["ph"] not in ("M", "C")]
        assert len(ring) <= 64           # ring sized by the flag
        assert data["otherData"]["dropped_events"] > 0
        err = capsys.readouterr().err
        assert "dropped" in err
        assert "--trace-capacity" in err     # suggests a retry size

    def test_trace_capacity_must_be_positive(self, capsys):
        from repro.runner.cli import main
        rc = main(["trace", "--trace-capacity", "0"])
        assert rc == 2
        assert "--trace-capacity" in capsys.readouterr().err

    def test_stalls_command_renders_and_writes_json(self, tmp_path,
                                                    capsys):
        from repro.runner.cli import main
        out = tmp_path / "stalls.json"
        rc = main(["stalls", "--workload", "radix", "--protocols",
                   "MESI", "DBypFull", "--scale", "tiny",
                   "--json", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "stall attribution: radix (16 tiles)" in printed
        assert "2 rung(s)" in printed
        data = json.loads(out.read_text())
        assert [p["protocol"] for p in data["profiles"]] == [
            "MESI", "DBypFull"]
        assert all(p["audits"]["ok"] for p in data["profiles"])

    def test_stalls_rejects_unknown_protocol(self, capsys):
        from repro.runner.cli import main
        rc = main(["stalls", "--protocols", "MESl"])
        assert rc == 2
        assert "MESI" in capsys.readouterr().err  # did-you-mean hint

    def test_progress_flag_writes_sidecar(self, tmp_path, capsys):
        from repro.runner.cli import main
        cache = tmp_path / "cache"
        rc = main(["sweep", "--workloads", "radix", "--protocols", "MESI",
                   "--scale", "tiny", "--cache-dir", str(cache),
                   "--progress"])
        assert rc == 0
        data = load_telemetry(cache / "telemetry.json")
        assert data["completed_cells"] == 1
        assert "telemetry:" in capsys.readouterr().out

    def test_disabled_path_writes_no_sidecar(self, tmp_path):
        from repro.runner.cli import main
        cache = tmp_path / "cache"
        rc = main(["sweep", "--workloads", "radix", "--protocols", "MESI",
                   "--scale", "tiny", "--cache-dir", str(cache)])
        assert rc == 0
        assert not (cache / "telemetry.json").exists()

"""Tests for figure construction, normalization and rendering."""

import pytest

from repro.analysis.figures import (
    ALL_FIGURES, FigureTable, figure_5_1a, figure_5_1b, figure_5_1d,
    figure_5_2, figure_5_3a, table_4_1, table_4_2)
from repro.common.config import ScaleConfig, SystemConfig, scaled_system
from repro.core.simulator import simulate
from repro.workloads import build_workload

SCALE = ScaleConfig.tiny()
CFG = scaled_system(SCALE)


@pytest.fixture(scope="module")
def mini_grid():
    grid = {}
    for name in ("radix", "kD-tree"):
        w = build_workload(name, SCALE)
        grid[name] = {p: simulate(w, p, CFG)
                      for p in ("MESI", "MMemL1", "DeNovo", "DBypFull")}
    return grid


class TestNormalization:
    def test_mesi_bar_is_100(self, mini_grid):
        fig = figure_5_1a(mini_grid)
        for workload in mini_grid:
            assert fig.bar_total(workload, "MESI") == pytest.approx(100.0)

    def test_segments_sum_to_total(self, mini_grid):
        fig = figure_5_1a(mini_grid)
        for workload in mini_grid:
            for proto in mini_grid[workload]:
                segs = sum(fig.rows[workload][proto].values())
                assert segs == pytest.approx(fig.bar_total(workload, proto))

    def test_optimized_bars_below_mesi(self, mini_grid):
        fig = figure_5_1a(mini_grid)
        for workload in mini_grid:
            assert fig.bar_total(workload, "DBypFull") < 100.0

    def test_average_total(self, mini_grid):
        fig = figure_5_1a(mini_grid)
        totals = [fig.bar_total(w, "DeNovo") for w in mini_grid]
        assert fig.average_total("DeNovo") == pytest.approx(
            sum(totals) / len(totals))


class TestFigureContent:
    def test_51a_has_four_segments(self, mini_grid):
        fig = figure_5_1a(mini_grid)
        assert fig.segment_labels == ("LD", "ST", "WB", "Overhead")

    def test_51b_stack_matches_paper_legend(self, mini_grid):
        fig = figure_5_1b(mini_grid)
        assert fig.segment_labels == (
            "Req Ctl", "Resp Ctl", "Resp L1 Used", "Resp L1 Waste",
            "Resp L2 Used", "Resp L2 Waste")

    def test_51d_stack(self, mini_grid):
        fig = figure_5_1d(mini_grid)
        assert fig.segment_labels == (
            "Control", "L2 Used", "L2 Waste", "Mem Used", "Mem Waste")

    def test_52_bar_height_tracks_exec_cycles(self, mini_grid):
        fig = figure_5_2(mini_grid)
        for workload, protos in mini_grid.items():
            base = protos["MESI"].exec_cycles
            for proto, result in protos.items():
                expected = 100.0 * result.exec_cycles / base
                assert fig.bar_total(workload, proto) == pytest.approx(
                    expected, rel=1e-6)

    def test_53a_counts_words(self, mini_grid):
        fig = figure_5_3a(mini_grid)
        for workload, protos in mini_grid.items():
            base = sum(protos["MESI"].l1_waste.values())
            for proto, result in protos.items():
                expected = 100.0 * sum(result.l1_waste.values()) / base
                assert fig.bar_total(workload, proto) == pytest.approx(
                    expected)

    def test_all_figures_buildable(self, mini_grid):
        for fig_id, builder in ALL_FIGURES.items():
            fig = builder(mini_grid)
            assert isinstance(fig, FigureTable)
            assert fig.rows


class TestRendering:
    def test_render_contains_workloads_and_protocols(self, mini_grid):
        text = figure_5_1a(mini_grid).render()
        assert "radix" in text and "kD-tree" in text
        assert "MESI" in text and "DBypFull" in text
        assert "Figure 5.1a" in text

    def test_render_has_totals(self, mini_grid):
        text = figure_5_1a(mini_grid).render()
        assert "TOTAL" in text
        assert "average totals" in text


class TestConfigTables:
    def test_table_4_1_paper_values(self):
        text = table_4_1(SystemConfig())
        assert "2GHz, in-order" in text
        assert "32KB, 8-way" in text
        assert "256KB slices (4MB total), 16-way" in text
        assert "16 byte links, 3 cycle link latency" in text
        assert "FR-FCFS" in text
        assert "DDR3-1066, 8 banks, 2 ranks" in text

    def test_table_4_2_paper_sizes(self):
        text = table_4_2(ScaleConfig.paper())
        assert "512x512 matrix" in text
        assert "4000000 keys, 1024 radix" in text
        assert "16384 bodies" in text

    def test_table_4_2_default_scale_notes_paper(self):
        text = table_4_2()
        assert "paper:" in text

"""Smoke tests: every example script runs and prints its key output."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "DBypFull vs MESI" in proc.stdout
        assert "less traffic" in proc.stdout

    def test_protocol_ladder(self):
        proc = run_example("protocol_ladder.py", "LU")
        assert proc.returncode == 0, proc.stderr
        assert "MESI" in proc.stdout and "DBypFull" in proc.stdout

    def test_custom_workload(self):
        proc = run_example("custom_workload.py")
        assert proc.returncode == 0, proc.stderr
        assert "DFlexL1" in proc.stdout

    def test_bloom_tuning(self):
        proc = run_example("bloom_tuning.py")
        assert proc.returncode == 0, proc.stderr
        assert "direct" in proc.stdout

    def test_energy_breakdown(self):
        proc = run_example("energy_breakdown.py", "radix", "22nm")
        assert proc.returncode == 0, proc.stderr
        assert "Figure E.1 [22nm]" in proc.stdout
        assert "Energy & EDP (22nm preset)" in proc.stdout
        assert "DBypFull vs MESI [22nm]" in proc.stdout
        assert "EDP" in proc.stdout

    def test_trace_timeline(self, tmp_path):
        out = tmp_path / "trace.json"
        proc = run_example("trace_timeline.py", "FFT", "DeNovo", str(out))
        assert proc.returncode == 0, proc.stderr
        assert "metrics hub totals" in proc.stdout
        assert "timeline: FFT / DeNovo" in proc.stdout
        assert out.exists()
        import json
        assert json.loads(out.read_text())["traceEvents"]

    def test_core_scaling(self):
        proc = run_example("core_scaling.py", "stream", "4", "16")
        assert proc.returncode == 0, proc.stderr
        assert "Core-count scaling" in proc.stdout
        assert "4t" in proc.stdout and "16t" in proc.stdout
        assert "less traffic than MESI" in proc.stdout

"""Protocol-level tests for DeNovo and its optimizations."""

import pytest

from repro.common.config import SystemConfig
from repro.common.regions import FlexPattern, Region
from repro.network import traffic as T
from repro.waste.profiler import Category
from repro.workloads.trace import OP_BARRIER, OP_LOAD, OP_STORE

from tests.conftest import (
    TINY_SYSTEM, make_region_table, run_micro, simple_region)


class TestWriteValidate:
    def test_store_miss_fetches_nothing(self):
        """L1 write-validate: a store miss allocates without any fetch."""
        result, _ = run_micro({9: [(OP_STORE, 80)]}, proto="DeNovo")
        assert result.dram_stats["reads"] >= 1  # L2 fetch-on-write fetches
        assert result.words_fetched("l1") == 0  # but nothing enters the L1

    def test_l2_write_validate_removes_memory_fetch(self):
        """DValidateL2: the registration allocates the L2 line without
        fetching it from memory."""
        result, _ = run_micro({9: [(OP_STORE, 80)]}, proto="DValidateL2")
        assert result.dram_stats["reads"] == 0
        assert result.words_fetched("l2") == 0

    def test_baseline_l2_fetch_on_write_is_store_traffic(self):
        """The baseline's L2 write-miss fetch shows up as ST Resp L2."""
        result, _ = run_micro({9: [(OP_STORE, 80)]}, proto="DeNovo")
        resp_l2 = (result.traffic_bucket(T.ST, T.RESP_L2_USED)
                   + result.traffic_bucket(T.ST, T.RESP_L2_WASTE))
        assert resp_l2 > 0

    def test_store_then_local_load_hits(self):
        result, _ = run_micro({9: [(OP_STORE, 80), (OP_LOAD, 80)]},
                              proto="DeNovo")
        assert result.l1_waste[Category.USED] == 0   # no fetched words at L1
        assert result.mem_waste[Category.WRITE] >= 0


class TestRegistration:
    def test_store_sends_registration(self):
        result, sys = run_micro({9: [(OP_STORE, 80)]}, proto="DeNovo")
        assert sys.proto_sys.stat_registrations >= 1
        assert result.traffic_bucket(T.ST, T.REQ_CTL) > 0

    def test_write_combining_batches_line(self):
        """16 stores to one line: one registration message."""
        ops = [(OP_STORE, 80 + w) for w in range(16)]
        _result, sys = run_micro({9: ops}, proto="DeNovo")
        assert sys.proto_sys.stat_registrations == 1

    def test_registration_invalidates_old_registrant(self):
        """Core 1 writes a word core 0 registered: core 0's copy dies."""
        result, sys = run_micro({
            0: [(OP_STORE, 80), (OP_BARRIER, 0), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_STORE, 80), (OP_BARRIER, 0)],
        }, proto="DeNovo")
        assert sys.proto_sys.stat_reg_invalidations >= 1

    def test_no_mesi_overhead_messages(self):
        """DeNovo has no invalidation/ack/unblock overhead traffic."""
        result, _ = run_micro({
            0: [(OP_LOAD, 80), (OP_BARRIER, 0), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_STORE, 80), (OP_BARRIER, 0)],
        }, proto="DeNovo")
        assert result.traffic_bucket(T.OVH, T.OVH_UNBLOCK) == 0
        assert result.traffic_bucket(T.OVH, T.OVH_INVAL) == 0
        assert result.traffic_bucket(T.OVH, T.OVH_ACK) == 0


class TestOwnerForward:
    def test_load_of_registered_word_forwards(self):
        """A load of a word registered to another core is served
        cache-to-cache; memory is read only for the L2 write-miss fill."""
        result, _ = run_micro({
            0: [(OP_STORE, 80), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_LOAD, 80)],
        }, proto="DValidateL2")
        assert result.dram_stats["reads"] == 0   # no fetch at all

    def test_owner_keeps_registration(self):
        """After a forward, the owner still owns: a second reader is
        forwarded again, and the owner's later store needs no message."""
        _result, sys = run_micro({
            0: [(OP_STORE, 80), (OP_BARRIER, 0), (OP_BARRIER, 0),
                (OP_STORE, 80), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_LOAD, 80), (OP_BARRIER, 0),
                (OP_BARRIER, 0)],
        }, proto="DValidateL2")
        # Second store by owner to a word it still owns: no new
        # registration beyond the first one.
        assert sys.proto_sys.stat_registrations == 1


class TestSelfInvalidation:
    def test_written_region_invalidated_at_barrier(self):
        """Core 1's valid copy of a written region dies at the barrier."""
        result, sys = run_micro({
            0: [(OP_LOAD, 80), (OP_BARRIER, 0), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_STORE, 96), (OP_BARRIER, 0)],
        }, proto="DeNovo")
        assert sys.proto_sys.stat_self_invalidated_words > 0

    def test_untouched_region_survives(self):
        """Self-invalidation is region-precise: data in regions nobody
        wrote stays valid across barriers."""
        regions = make_region_table(
            Region(0, "ro", 0, 1024),
            Region(1, "rw", 1024, 1024))
        result, _ = run_micro({
            0: [(OP_LOAD, 80), (OP_BARRIER, 0), (OP_STORE, 1024),
                (OP_BARRIER, 0), (OP_LOAD, 80), (OP_BARRIER, 0)],
        }, proto="DeNovo", regions=regions,
            written_regions=[frozenset(), frozenset({1}), frozenset()])
        # The second load of 80 hits (one memory fetch for its line).
        line_reads = result.dram_stats["reads"]
        assert result.l1_waste[Category.INVALIDATE] == 0

    def test_registered_words_survive_barrier(self):
        """The writer's own registered words are not self-invalidated."""
        result, _ = run_micro({
            9: [(OP_STORE, 80), (OP_BARRIER, 0), (OP_LOAD, 80),
                (OP_BARRIER, 0)],
        }, proto="DValidateL2")
        # The load after the barrier hits locally: no load traffic at all.
        assert result.traffic_major(T.LD) == 0


class TestDirtyWordWritebacks:
    def _evict_ops(self, n_lines=9):
        """Store one word in each of n even-indexed lines (same L1 set)."""
        return [(OP_STORE, i * 32 * 16) for i in range(n_lines)]

    def test_l1_wb_sends_dirty_words_only(self):
        """DeNovo L1->L2 writebacks carry no clean words."""
        result, _ = run_micro({9: self._evict_ops()}, proto="DeNovo")
        assert result.traffic_bucket(T.WB, T.WB_L2_USED) > 0
        assert result.traffic_bucket(T.WB, T.WB_L2_WASTE) == 0

    def test_baseline_l2_wb_full_line(self):
        """Baseline DeNovo writes whole lines to memory (Mem Waste)."""
        # Evict enough L2 lines: tiny L2 slice is 2KB = 32 lines; all our
        # even lines map home slice 0; overflow its sets.
        ops = [(OP_STORE, i * 16 * 16) for i in range(0, 80, 2)]
        result, _ = run_micro({9: ops}, proto="DeNovo")
        if result.traffic_bucket(T.WB, T.WB_MEM_USED) > 0:
            assert result.traffic_bucket(T.WB, T.WB_MEM_WASTE) > 0

    def test_validatel2_wb_dirty_only(self):
        """DValidateL2 writes only dirty words to memory."""
        ops = [(OP_STORE, i * 16 * 16) for i in range(0, 80, 2)]
        result, _ = run_micro({9: ops}, proto="DValidateL2")
        assert result.traffic_bucket(T.WB, T.WB_MEM_WASTE) == 0


class TestFlex:
    def make_flex_regions(self):
        # Array of 8-word structs; fields 0 and 1 are the hot ones.
        flex = FlexPattern(stride_words=8, field_offsets=(0, 1))
        return make_region_table(
            Region(0, "aos", 0, 4096, flex=flex))

    def test_flex_response_smaller(self):
        """DFlexL1 responses carry the communication region, not the line."""
        regions = self.make_flex_regions()
        ops = {0: [(OP_STORE, 256), (OP_STORE, 257), (OP_BARRIER, 0)],
               1: [(OP_BARRIER, 0), (OP_LOAD, 256)]}
        base, _ = run_micro(ops, proto="DeNovo",
                            regions=self.make_flex_regions())
        flex, _ = run_micro(ops, proto="DFlexL1",
                            regions=self.make_flex_regions())
        base_data = (base.traffic_bucket(T.LD, T.RESP_L1_USED)
                     + base.traffic_bucket(T.LD, T.RESP_L1_WASTE))
        flex_data = (flex.traffic_bucket(T.LD, T.RESP_L1_USED)
                     + flex.traffic_bucket(T.LD, T.RESP_L1_WASTE))
        assert flex_data <= base_data

    def test_flex_l2_excess_waste(self):
        """DFlexL2 drops non-region words at the memory controller."""
        regions = self.make_flex_regions()
        result, _ = run_micro({0: [(OP_LOAD, 256)]}, proto="DFlexL2",
                              regions=regions)
        assert result.mem_waste[Category.EXCESS] > 0

    def test_flex_prefetch_gathers_elements(self):
        """A prefetching pattern pulls following elements' fields in one
        response (kD-tree edges style)."""
        flex = FlexPattern(stride_words=8, field_offsets=(0, 1),
                           prefetch_elements=3)
        regions = make_region_table(Region(0, "stream", 0, 4096, flex=flex))
        result, _ = run_micro(
            {0: [(OP_LOAD, 256), (OP_LOAD, 264)]},   # two elements
            proto="DFlexL2", regions=regions)
        # The second element's field arrived with the first response.
        assert result.l1_waste[Category.USED] >= 2


class TestBypass:
    def make_bypass_regions(self):
        return make_region_table(
            Region(0, "stream", 0, 65536, bypass_l2=True))

    def test_response_bypass_skips_l2_fill(self):
        """DBypL2: memory responses for bypassed regions skip the L2."""
        regions = self.make_bypass_regions()
        result, _ = run_micro({0: [(OP_LOAD, 256)]}, proto="DBypL2",
                              regions=regions)
        assert result.words_fetched("l2") == 0
        assert result.words_fetched("l1") > 0

    def test_non_bypassed_region_still_fills_l2(self):
        regions = make_region_table(Region(0, "normal", 0, 65536))
        result, _ = run_micro({0: [(OP_LOAD, 256)]}, proto="DBypL2",
                              regions=regions)
        assert result.words_fetched("l2") > 0

    def test_request_bypass_goes_direct(self):
        """DBypFull: with a clean Bloom filter, the request goes straight
        to the memory controller."""
        regions = self.make_bypass_regions()
        _result, sys = run_micro(
            {0: [(OP_LOAD, 256), (OP_LOAD, 512)]},
            proto="DBypFull", regions=regions)
        assert sys.proto_sys.stat_direct_requests >= 1
        assert sys.proto_sys.stat_bloom_copies >= 1

    def test_bloom_copy_is_overhead_traffic(self):
        regions = self.make_bypass_regions()
        result, _ = run_micro({9: [(OP_LOAD, 256)]}, proto="DBypFull",
                              regions=regions)
        assert result.traffic_bucket(T.OVH, T.OVH_BLOOM) > 0

    def test_dirty_line_not_bypassed(self):
        """A line with dirty words on-chip must go through the L2 (the
        Bloom filter reports it)."""
        regions = self.make_bypass_regions()
        result, sys = run_micro({
            0: [(OP_STORE, 256), (OP_BARRIER, 0), (OP_BARRIER, 0)],
            1: [(OP_BARRIER, 0), (OP_LOAD, 256), (OP_BARRIER, 0)],
        }, proto="DBypFull", regions=regions)
        # The load found the word via the L2/owner, not stale memory:
        # loads of on-chip-dirty data are never served directly.
        assert result.dram_stats["reads"] == 0


class TestMemToL1:
    def test_parallel_transfer_reduces_latency_not_traffic(self):
        ops = {9: [(OP_LOAD, 80)]}
        base, _ = run_micro(ops, proto="DValidateL2")
        opt, _ = run_micro(ops, proto="DMemL1")
        # Same words move (to L1 and L2), but the L1 gets its copy sooner.
        assert opt.exec_cycles <= base.exec_cycles

"""End-to-end system tests: invariants that must hold for every run."""

import pytest

from repro.common.config import (
    PROTOCOL_ORDER, ScaleConfig, SystemConfig, protocol, scaled_system)
from repro.core.simulator import simulate, simulate_all_protocols
from repro.core.system import System
from repro.network import traffic as T
from repro.waste.profiler import Category
from repro.workloads import build_workload
from repro.workloads.trace import OP_BARRIER, OP_LOAD, OP_STORE

from tests.conftest import TINY_SYSTEM, micro_workload, run_micro

SCALE = ScaleConfig.tiny()
CFG = scaled_system(SCALE)


@pytest.fixture(scope="module", params=["radix", "barnes"])
def workload(request):
    return build_workload(request.param, SCALE)


class TestDeterminism:
    @pytest.mark.parametrize("proto", ["MESI", "DBypFull"])
    def test_repeated_runs_identical(self, workload, proto):
        a = simulate(workload, proto, CFG)
        b = simulate(workload, proto, CFG)
        assert a.traffic == b.traffic
        assert a.exec_cycles == b.exec_cycles
        assert a.l1_waste == b.l1_waste
        assert a.mem_waste == b.mem_waste


class TestInvariants:
    @pytest.mark.parametrize("proto", PROTOCOL_ORDER)
    def test_run_completes_for_every_protocol(self, workload, proto):
        result = simulate(workload, proto, CFG)
        assert result.exec_cycles > 0
        assert result.traffic_total() > 0

    @pytest.mark.parametrize("proto", ["MESI", "DeNovo", "DBypFull"])
    def test_waste_counts_nonnegative_and_complete(self, workload, proto):
        result = simulate(workload, proto, CFG)
        for counts in (result.l1_waste, result.l2_waste, result.mem_waste):
            assert all(v >= 0 for v in counts.values())
        # The L1 always receives words; the L2/memory levels may see
        # nothing in the measured window when a tiny input fits on-chip
        # after warm-up.
        assert sum(result.l1_waste.values()) > 0

    @pytest.mark.parametrize("proto", ["MESI", "DeNovo"])
    def test_time_attribution_covers_exec(self, workload, proto):
        """Aggregated per-core time roughly accounts for 16 cores' cycles:
        every cycle is busy, stalled or synchronizing."""
        result = simulate(workload, proto, CFG)
        attributed = sum(result.time.values())
        total = 16 * result.exec_cycles
        assert attributed <= total * 1.05
        assert attributed >= total * 0.5

    def test_mesi_has_overhead_denovo_does_not(self, workload):
        mesi = simulate(workload, "MESI", CFG)
        denovo = simulate(workload, "DeNovo", CFG)
        assert mesi.overhead_fraction() > 0.02
        assert denovo.overhead_fraction() < 0.02

    def test_dram_reads_match_memory_fetches(self, workload):
        """Every word fetched from memory derives from some DRAM read:
        fetched words <= 16 words per DRAM line read."""
        for proto in ("MESI", "DeNovo", "DBypFull"):
            result = simulate(workload, proto, CFG)
            fetched = result.words_fetched("mem")
            assert fetched <= result.dram_stats["reads"] * 16


class TestWarmupReset:
    def test_warmup_stats_excluded(self):
        """A workload whose only measured phase is empty reports almost
        no traffic even though warm-up moved data."""
        ops = {0: [(OP_LOAD, 80), (OP_LOAD, 96), (OP_BARRIER, 0),
                   (OP_BARRIER, 0)]}
        w = micro_workload(ops)
        w.warmup_barriers = 1
        result = System(w, protocol("MESI"), TINY_SYSTEM).run()
        # All load traffic happened before the warm-up barrier.
        assert result.traffic_major(T.LD) == 0

    def test_measured_phase_counted(self):
        ops = {0: [(OP_BARRIER, 0), (OP_LOAD, 80), (OP_BARRIER, 0)]}
        w = micro_workload(ops)
        w.warmup_barriers = 1
        result = System(w, protocol("MESI"), TINY_SYSTEM).run()
        assert result.traffic_major(T.LD) > 0


class TestCrossProtocolShapes:
    """Relative orderings that must hold on any workload."""

    def test_denovo_store_data_less_than_mesi(self, workload):
        """Write-validate eliminates store fetch data at the L1."""
        mesi = simulate(workload, "MESI", CFG)
        dv = simulate(workload, "DValidateL2", CFG)
        mesi_st_l1 = (mesi.traffic_bucket(T.ST, T.RESP_L1_USED)
                      + mesi.traffic_bucket(T.ST, T.RESP_L1_WASTE))
        dv_st_l1 = (dv.traffic_bucket(T.ST, T.RESP_L1_USED)
                    + dv.traffic_bucket(T.ST, T.RESP_L1_WASTE))
        assert dv_st_l1 == 0
        assert mesi_st_l1 >= 0

    def test_wb_waste_eliminated_by_dirty_only(self, workload):
        dv = simulate(workload, "DValidateL2", CFG)
        assert dv.traffic_bucket(T.WB, T.WB_L2_WASTE) == 0
        assert dv.traffic_bucket(T.WB, T.WB_MEM_WASTE) == 0

    def test_total_traffic_ordering(self, workload):
        """DBypFull never exceeds baseline MESI traffic."""
        mesi = simulate(workload, "MESI", CFG)
        best = simulate(workload, "DBypFull", CFG)
        assert best.traffic_total() < mesi.traffic_total()


class TestBarrierReleaseCost:
    """SystemConfig.barrier_release_cost must reach the Barrier."""

    def _run(self, cost):
        from dataclasses import replace
        ops = {0: [(OP_STORE, 0), (OP_BARRIER, 0), (OP_LOAD, 0)]}
        cfg = replace(TINY_SYSTEM, barrier_release_cost=cost)
        return run_micro(ops, config=cfg)

    def test_threaded_through_system(self):
        _, system = self._run(123)
        assert system.barrier._release_cost == 123
        assert system.config.barrier_release_cost == 123

    def test_cost_shows_up_in_execution_time(self):
        cheap, _ = self._run(0)
        dear, _ = self._run(5000)
        assert dear.exec_cycles > cheap.exec_cycles

    def test_default_matches_paper_value(self):
        assert SystemConfig().barrier_release_cost == 50


class TestBeyondPaperRungs:
    """The registry's extra rungs run end-to-end on real workloads."""

    @pytest.mark.parametrize("proto", ["MDirtyWB", "DWordHybrid"])
    def test_run_completes(self, workload, proto):
        result = simulate(workload, proto, CFG)
        assert result.exec_cycles > 0
        assert result.traffic_total() > 0

    def test_mdirty_wb_never_exceeds_mesi_traffic(self, workload):
        mesi = simulate(workload, "MESI", CFG)
        dirty = simulate(workload, "MDirtyWB", CFG)
        assert dirty.traffic_total() <= mesi.traffic_total()
        assert dirty.traffic_bucket(T.WB, T.WB_L2_WASTE) == 0
        assert dirty.traffic_bucket(T.WB, T.WB_MEM_WASTE) == 0


class TestSimulateApi:
    def test_accepts_protocol_object(self, workload):
        result = simulate(workload, protocol("MESI"), CFG)
        assert result.protocol == "MESI"

    def test_simulate_all_protocols(self, workload):
        results = simulate_all_protocols(workload, ["MESI", "DeNovo"], CFG)
        assert set(results) == {"MESI", "DeNovo"}

    def test_core_count_mismatch_rejected(self):
        w = build_workload("radix", SCALE)
        bad = SystemConfig(num_tiles=4, mesh_width=2)
        with pytest.raises(ValueError):
            System(w, protocol("MESI"), bad)

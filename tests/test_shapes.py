"""Machine-shape layer tests: partitioning, mesh, placement, end-to-end.

The machine shape (tile count / mesh / MC placement) is a sweep axis;
these tests pin the pieces every layer relies on at non-default shapes:
workload partition helpers cover their index space exactly once for any
core count, the mesh topology is self-consistent on 2x2 through 8x8,
MC placement is valid (and degenerate shapes fail loudly), and whole
simulations run end-to-end on non-default — including
non-power-of-two — machines.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.config import (
    ScaleConfig, SystemConfig, corner_tiles, mc_tile_placement,
    reshape_system, scaled_system)
from repro.core.simulator import simulate
from repro.network.mesh import Mesh
from repro.workloads import build_workload, core_grid
from repro.workloads.base import Generator
from repro.workloads.lu import LUGenerator

CORE_COUNTS = (1, 4, 16, 64)
MESH_WIDTHS = (2, 3, 8)


# ----------------------------------------------------------------------
# Partition helpers at non-default core counts
# ----------------------------------------------------------------------

class TestPartitionHelpers:
    @pytest.mark.parametrize("num_cores", CORE_COUNTS)
    @pytest.mark.parametrize("total", (0, 1, 7, 16, 63, 64, 97, 1000))
    def test_chunk_covers_range_exactly_once(self, num_cores, total):
        gen = Generator(ScaleConfig.tiny(), num_cores=num_cores)
        seen = []
        for core in range(num_cores):
            seen.extend(gen.chunk(total, core))
        assert sorted(seen) == list(range(total))

    @pytest.mark.parametrize("num_cores", CORE_COUNTS)
    @pytest.mark.parametrize("total", (0, 1, 7, 16, 63, 64, 97, 1000))
    def test_round_robin_covers_range_exactly_once(self, num_cores, total):
        gen = Generator(ScaleConfig.tiny(), num_cores=num_cores)
        seen = []
        for core in range(num_cores):
            seen.extend(gen.round_robin(total, core))
        assert sorted(seen) == list(range(total))

    @given(num_cores=st.integers(min_value=1, max_value=64),
           total=st.integers(min_value=0, max_value=500))
    @settings(max_examples=50, deadline=None)
    def test_chunk_is_contiguous_and_balanced(self, num_cores, total):
        gen = Generator(ScaleConfig.tiny(), num_cores=num_cores)
        sizes = [len(gen.chunk(total, core)) for core in range(num_cores)]
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            Generator(ScaleConfig.tiny(), num_cores=0)


class TestCoreGrid:
    def test_paper_machine_is_4x4(self):
        assert core_grid(16) == (4, 4)

    @pytest.mark.parametrize("n,expected", [
        (1, (1, 1)), (4, (2, 2)), (8, (2, 4)), (6, (2, 3)), (64, (8, 8))])
    def test_most_square_factorization(self, n, expected):
        assert core_grid(n) == expected

    @pytest.mark.parametrize("num_cores", CORE_COUNTS)
    def test_lu_owner_uses_every_core(self, num_cores):
        gen = LUGenerator(ScaleConfig.tiny(), num_cores=num_cores)
        owners = {gen.owner(bi, bj)
                  for bi in range(8) for bj in range(8)}
        assert owners == set(range(num_cores))

    def test_lu_owner_matches_paper_scatter_at_16_cores(self):
        gen = LUGenerator(ScaleConfig.tiny(), num_cores=16)
        for bi in range(6):
            for bj in range(6):
                assert gen.owner(bi, bj) == (bi % 4) * 4 + (bj % 4)


# ----------------------------------------------------------------------
# Mesh topology at non-default shapes
# ----------------------------------------------------------------------

def mesh_of(width: int, contention=False) -> Mesh:
    return Mesh(SystemConfig(num_tiles=width * width),
                model_contention=contention)


class TestMeshShapes:
    @pytest.mark.parametrize("width", MESH_WIDTHS)
    def test_coords_roundtrip(self, width):
        m = mesh_of(width)
        for tile in range(width * width):
            assert m.tile_at(*m.coords(tile)) == tile

    @pytest.mark.parametrize("width", MESH_WIDTHS)
    def test_route_matches_hops_everywhere(self, width):
        m = mesh_of(width)
        tiles = range(width * width)
        for a in tiles:
            for b in tiles:
                route = m.route(a, b)
                assert route[0] == a and route[-1] == b
                assert len(route) == m.hops(a, b) + 1
                for here, there in zip(route, route[1:]):
                    hx, hy = m.coords(here)
                    tx, ty = m.coords(there)
                    assert abs(hx - tx) + abs(hy - ty) == 1

    @pytest.mark.parametrize("width", MESH_WIDTHS)
    def test_hops_symmetric_and_bounded(self, width):
        m = mesh_of(width)
        diameter = 2 * (width - 1)
        tiles = range(width * width)
        for a in tiles:
            for b in tiles:
                assert m.hops(a, b) == m.hops(b, a) <= diameter
        assert m.hops(0, width * width - 1) == diameter

    @pytest.mark.parametrize("width", MESH_WIDTHS)
    def test_latency_consistent_with_hops(self, width):
        m = mesh_of(width, contention=False)
        link = SystemConfig(num_tiles=width * width).link_latency
        for b in range(width * width):
            expected = (Mesh.LOCAL_LATENCY if b == 0
                        else m.hops(0, b) * link + 3)
            assert m.latency(0, b, 4, now=0) == expected

    @pytest.mark.parametrize("width", MESH_WIDTHS)
    def test_contended_latency_never_beats_uncontended(self, width):
        contended = mesh_of(width, contention=True)
        floor = mesh_of(width, contention=False)
        for b in range(width * width):
            assert (contended.latency(0, b, 4, now=0)
                    >= floor.latency(0, b, 4, now=0))


# ----------------------------------------------------------------------
# MC placement and shape validation
# ----------------------------------------------------------------------

class TestMcPlacement:
    @pytest.mark.parametrize("width", (2, 3, 4, 5, 8))
    @pytest.mark.parametrize("count", (1, 2, 4))
    def test_placement_is_distinct_and_in_range(self, width, count):
        tiles = mc_tile_placement(width, count)
        assert len(tiles) == count == len(set(tiles))
        assert all(0 <= t < width * width for t in tiles)

    @pytest.mark.parametrize("width", (3, 4, 8))
    def test_eight_controllers(self, width):
        tiles = mc_tile_placement(width, 8)
        assert len(tiles) == 8 == len(set(tiles))
        assert all(0 <= t < width * width for t in tiles)

    def test_paper_machine_placement_is_the_four_corners(self):
        assert mc_tile_placement(4, 4) == corner_tiles(4) == (0, 3, 12, 15)

    def test_degenerate_mesh_rejected(self):
        """corner_tiles(1) used to return duplicate tile ids silently."""
        for width in (0, 1):
            with pytest.raises(ValueError):
                corner_tiles(width)
            with pytest.raises(ValueError):
                mc_tile_placement(width, 4)

    def test_eight_controllers_need_3x3(self):
        with pytest.raises(ValueError):
            mc_tile_placement(2, 8)

    def test_unsupported_count_rejected(self):
        with pytest.raises(ValueError):
            mc_tile_placement(4, 3)

    def test_system_config_validates_controller_count(self):
        with pytest.raises(ValueError):
            SystemConfig(num_tiles=4, num_mem_controllers=8)
        # ... and a valid non-default combination constructs.
        cfg = SystemConfig(num_tiles=36, num_mem_controllers=8)
        assert len(cfg.mc_placement()) == 8


class TestShapeConfig:
    @pytest.mark.parametrize("num_tiles", (4, 9, 16, 25, 36, 49, 64))
    def test_mesh_width_derived(self, num_tiles):
        cfg = SystemConfig(num_tiles=num_tiles)
        assert cfg.mesh_width ** 2 == num_tiles

    @pytest.mark.parametrize("num_tiles", (1, 2, 15, 81, 100))
    def test_out_of_range_shapes_rejected(self, num_tiles):
        with pytest.raises(ValueError):
            SystemConfig(num_tiles=num_tiles)

    def test_explicit_mismatched_width_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(num_tiles=16, mesh_width=3)

    @pytest.mark.parametrize("num_tiles", (4, 9, 64))
    def test_reshape_preserves_total_l2(self, num_tiles):
        base = scaled_system(ScaleConfig())
        total = base.l2_slice_kb * base.num_tiles
        shaped = reshape_system(base, num_tiles)
        assert shaped.num_tiles == num_tiles
        # Exact when the total divides evenly (the power-of-two axis);
        # nearest-KB per slice otherwise, so the total drifts by at
        # most half a KB per slice (e.g. 128KB over 9 slices -> 14KB).
        shaped_total = shaped.l2_slice_kb * shaped.num_tiles
        assert 2 * abs(shaped_total - total) <= num_tiles
        assert shaped.l2_slice_sets >= 1
        # Per-core resources are untouched.
        assert shaped.l1_kb == base.l1_kb
        assert shaped.store_buffer_entries == base.store_buffer_entries

    def test_reshape_to_same_shape_is_identity(self):
        base = scaled_system(ScaleConfig.tiny())
        assert reshape_system(base, base.num_tiles) is base

    def test_scaled_system_num_tiles_axis(self):
        tiny4 = scaled_system(ScaleConfig.tiny(), num_tiles=4)
        assert tiny4.num_tiles == 4 and tiny4.mesh_width == 2
        assert tiny4.mc_placement() == (0, 1, 2, 3)


# ----------------------------------------------------------------------
# End-to-end simulations on non-default machines
# ----------------------------------------------------------------------

class TestEndToEndShapes:
    @pytest.mark.parametrize("num_tiles", (4, 9))
    @pytest.mark.parametrize("proto", ("MESI", "DBypFull"))
    def test_radix_runs_on_small_and_non_pow2_machines(self, num_tiles,
                                                       proto):
        """9 tiles exercises the non-power-of-two L2 index path."""
        scale = ScaleConfig.tiny()
        config = scaled_system(scale, num_tiles=num_tiles)
        workload = build_workload("radix", scale, num_cores=num_tiles)
        result = simulate(workload, proto, config)
        assert result.exec_cycles > 0
        assert result.traffic_total() > 0
        assert result.events > 0

    def test_core_count_must_match_tiles(self):
        scale = ScaleConfig.tiny()
        workload = build_workload("stream", scale, num_cores=4)
        with pytest.raises(ValueError, match="4 cores"):
            simulate(workload, "MESI", scaled_system(scale))

    def test_same_workload_shape_changes_results(self):
        """The shape axis is a real experiment axis: a bigger machine
        moves more flit-hops for the same (tiny) input."""
        scale = ScaleConfig.tiny()
        results = {}
        for tiles in (4, 16):
            workload = build_workload("stream", scale, num_cores=tiles)
            results[tiles] = simulate(
                workload, "MESI", scaled_system(scale, num_tiles=tiles))
        assert (results[16].traffic_total()
                != results[4].traffic_total())

    def test_shape_sweep_through_runner_is_deterministic(self, tmp_path):
        """sweep_shapes returns every (shape, workload, protocol) cell
        and reruns bit-identically."""
        from repro.runner import result_to_dict, sweep_shapes
        kwargs = dict(workloads=("stream",), protocols=("MESI", "DeNovo"),
                      scale=ScaleConfig.tiny(), use_cache=False)
        first = sweep_shapes((4, 16), **kwargs)
        assert sorted(first) == [4, 16]
        for tiles, grid in first.items():
            assert list(grid) == ["stream"]
            assert list(grid["stream"]) == ["MESI", "DeNovo"]
        second = sweep_shapes((4, 16), **kwargs)
        for tiles in (4, 16):
            for proto in ("MESI", "DeNovo"):
                assert (result_to_dict(first[tiles]["stream"][proto])
                        == result_to_dict(second[tiles]["stream"][proto]))

    def test_scaling_figure_renders_from_swept_shapes(self):
        from repro.analysis.scaling import (
            figure_scaling, report_section, run_scaling)
        shapes = run_scaling(workloads=("stream",),
                             protocols=("MESI", "DeNovo"),
                             tiles=(4, 16), scale=ScaleConfig.tiny(),
                             use_cache=False)
        fig = figure_scaling(shapes)
        text = fig.render()
        assert "Execution time" in text and "flit-hops" in text
        assert "MESI" in text and "DeNovo" in text
        assert "4t" in text and "16t" in text
        assert fig.metric("stream", "MESI", 16, "traffic") > 0
        section = report_section(shapes)
        assert section.startswith("## Core-count scaling")

    def test_scaling_figure_rejects_ragged_shapes(self):
        from repro.analysis.scaling import figure_scaling
        scale = ScaleConfig.tiny()
        w4 = build_workload("stream", scale, num_cores=4)
        r4 = simulate(w4, "MESI", scaled_system(scale, num_tiles=4))
        shapes = {4: {"stream": {"MESI": r4}}, 16: {"stream": {}}}
        with pytest.raises(ValueError, match="missing tile counts"):
            figure_scaling(shapes)

"""Unit tests for system/protocol/scale configuration."""

import pytest

from repro.common.config import (
    DEFAULT_SYSTEM, PROTOCOL_ORDER, PROTOCOLS, ProtocolConfig, ScaleConfig,
    SystemConfig, corner_tiles, protocol, scaled_system)


class TestSystemConfig:
    def test_paper_defaults(self):
        cfg = SystemConfig()
        assert cfg.num_tiles == 16
        assert cfg.l1_kb == 32
        assert cfg.l2_slice_kb == 256
        assert cfg.line_bytes == 64
        assert cfg.link_bytes == 16
        assert cfg.link_latency == 3

    def test_derived_geometry(self):
        cfg = SystemConfig()
        assert cfg.words_per_line == 16
        assert cfg.words_per_flit == 4
        assert cfg.l1_lines == 512            # 32KB / 64B
        assert cfg.l1_sets == 64              # 512 / 8-way
        assert cfg.l2_slice_lines == 4096     # 256KB / 64B
        assert cfg.l2_slice_sets == 256
        assert cfg.max_words_per_message == 16

    def test_mesh_must_be_square(self):
        with pytest.raises(ValueError):
            SystemConfig(num_tiles=15)

    def test_corner_tiles_4x4(self):
        assert corner_tiles(4) == (0, 3, 12, 15)

    def test_corner_tiles_2x2(self):
        assert corner_tiles(2) == (0, 1, 2, 3)


class TestProtocolConfigs:
    def test_nine_protocols_in_paper_order(self):
        assert PROTOCOL_ORDER == (
            "MESI", "MMemL1", "DeNovo", "DFlexL1", "DValidateL2",
            "DMemL1", "DFlexL2", "DBypL2", "DBypFull")

    def test_mesi_baseline_has_no_optimizations(self):
        p = protocol("MESI")
        assert p.kind == "mesi"
        assert not p.mem_to_l1
        assert not p.flex_l1

    def test_mmeml1(self):
        p = protocol("MMemL1")
        assert p.kind == "mesi" and p.mem_to_l1

    def test_denovo_baseline(self):
        p = protocol("DeNovo")
        assert p.is_denovo
        assert not (p.flex_l1 or p.l2_write_validate or p.mem_to_l1)

    def test_dflexl1_only_adds_flex(self):
        p = protocol("DFlexL1")
        assert p.flex_l1 and not p.flex_l2
        assert not p.l2_write_validate

    def test_dvalidatel2(self):
        p = protocol("DValidateL2")
        assert p.l2_write_validate and p.l2_dirty_wb_only
        assert not p.flex_l1 and not p.mem_to_l1

    def test_feature_ladder_is_monotone(self):
        """Each protocol in the DeNovo ladder adds features, never removes."""
        ladder = ("DValidateL2", "DMemL1", "DFlexL2", "DBypL2", "DBypFull")
        flags = ("l2_write_validate", "l2_dirty_wb_only", "mem_to_l1",
                 "flex_l1", "flex_l2", "bypass_l2_response",
                 "bypass_l2_request")
        for earlier, later in zip(ladder, ladder[1:]):
            pe, pl = protocol(earlier), protocol(later)
            for flag in flags:
                assert not (getattr(pe, flag) and not getattr(pl, flag)), (
                    f"{later} dropped {flag} present in {earlier}")

    def test_dbypfull_has_everything(self):
        p = protocol("DBypFull")
        assert all((p.l2_write_validate, p.l2_dirty_wb_only, p.mem_to_l1,
                    p.flex_l1, p.flex_l2, p.bypass_l2_response,
                    p.bypass_l2_request))

    def test_unknown_protocol_raises(self):
        with pytest.raises(KeyError):
            protocol("MOESI")

    def test_mesi_cannot_take_denovo_flags(self):
        with pytest.raises(ValueError):
            ProtocolConfig(name="bad", kind="mesi", flex_l1=True)

    def test_flex_l2_requires_flex_l1(self):
        with pytest.raises(ValueError):
            ProtocolConfig(name="bad", kind="denovo", flex_l2=True)

    def test_request_bypass_requires_response_bypass(self):
        with pytest.raises(ValueError):
            ProtocolConfig(name="bad", kind="denovo",
                           bypass_l2_request=True)


class TestScaleConfig:
    def test_paper_scale_matches_table_4_2(self):
        sc = ScaleConfig.paper()
        assert sc.lu_matrix == 512
        assert sc.fft_points == 262_144
        assert sc.radix_keys == 4_000_000
        assert sc.radix_buckets == 1024
        assert sc.barnes_bodies == 16_384

    def test_paper_scale_keeps_paper_caches(self):
        cfg = scaled_system(ScaleConfig.paper())
        assert cfg.l1_kb == 32 and cfg.l2_slice_kb == 256

    def test_small_scale_shrinks_caches(self):
        cfg = scaled_system(ScaleConfig())
        assert cfg.l1_kb < 32 and cfg.l2_slice_kb < 256

    def test_radix_buckets_exceed_l1_lines_at_every_scale(self):
        """The paper's radix evict-waste effect requires more write
        targets than the L1 holds lines."""
        for scale in (ScaleConfig(), ScaleConfig.tiny(),
                      ScaleConfig.paper()):
            cfg = scaled_system(scale)
            assert scale.radix_buckets > cfg.l1_lines

"""Unit tests for the coherence policy layer.

Covers each policy class in isolation, the flag -> policy resolution for
every registered rung, and the policies composed end-to-end by both
protocol cores (MESI and DeNovo), including the beyond-paper rungs
MDirtyWB and DWordHybrid.
"""

import pytest

from tests.conftest import TINY_SYSTEM, loads, run_micro, stores
from repro.coherence import build_protocol_system
from repro.coherence.policies import (
    BypassPolicy, TransferPolicy, WritebackPolicy, resolve_policies)
from repro.common.addressing import WORDS_PER_LINE, line_of, words_of_line
from repro.common.config import (
    SystemConfig, protocol, scaled_system)
from repro.common.regions import FlexPattern, Region, RegionTable
from repro.common.registry import registered_protocols
from repro.network import traffic as T


def flex_table(stride=8, fields=(0, 1), size=4096, bypass=False):
    table = RegionTable()
    table.add(Region(region_id=0, name="structs", base_word=0,
                     size_words=size, bypass_l2=bypass,
                     flex=FlexPattern(stride_words=stride,
                                      field_offsets=fields)))
    return table


# ----------------------------------------------------------------------
# Policy classes in isolation
# ----------------------------------------------------------------------

class TestWritebackPolicy:
    DIRTY = [True, False, True] + [False] * (WORDS_PER_LINE - 3)

    def test_full_line_flags_pass_through(self):
        policy = WritebackPolicy(l1_dirty_only=False, l2_dirty_only=False)
        assert policy.l1_flags(self.DIRTY) == self.DIRTY
        assert policy.l2_flags(self.DIRTY) == self.DIRTY

    def test_dirty_only_ships_just_the_dirty_words(self):
        policy = WritebackPolicy(l1_dirty_only=True, l2_dirty_only=True)
        assert policy.l1_flags(self.DIRTY) == [True, True]
        assert policy.l2_flags(self.DIRTY) == [True, True]

    def test_flags_are_copies_not_aliases(self):
        policy = WritebackPolicy(l1_dirty_only=False, l2_dirty_only=False)
        flags = policy.l1_flags(self.DIRTY)
        flags[0] = False
        assert self.DIRTY[0] is True


class TestTransferPolicy:
    def test_line_granular_without_flex(self):
        policy = TransferPolicy(regions=flex_table(), max_words=16,
                                flex_l1=False, flex_l2=False)
        assert policy.cache_candidates(37) == \
            list(words_of_line(line_of(37)))
        assert policy.memory_region(37) is None

    def test_flex_l1_gathers_region_fields(self):
        policy = TransferPolicy(regions=flex_table(stride=8, fields=(0, 1)),
                                max_words=16, flex_l1=True, flex_l2=False)
        # Word 9 = element 1, field offset 1 -> fields {8, 9}.
        assert policy.cache_candidates(9) == [8, 9]
        assert policy.memory_region(9) is None

    def test_flex_inserts_requested_word_when_off_field(self):
        policy = TransferPolicy(regions=flex_table(stride=8, fields=(0, 1)),
                                max_words=16, flex_l1=True, flex_l2=False)
        # Word 12 is element 1, offset 4 — not a used field; the
        # requested word must still lead the response.
        candidates = policy.cache_candidates(12)
        assert candidates[0] == 12

    def test_flex_l2_exposes_the_memory_region(self):
        table = flex_table()
        policy = TransferPolicy(regions=table, max_words=16,
                                flex_l1=True, flex_l2=True)
        region = policy.memory_region(9)
        assert region is not None
        assert policy.region_words(region, 9) == [8, 9]

    def test_falls_back_to_line_outside_flex_regions(self):
        policy = TransferPolicy(regions=flex_table(size=64), max_words=16,
                                flex_l1=True, flex_l2=False)
        outside = 4096
        assert policy.cache_candidates(outside) == \
            list(words_of_line(line_of(outside)))


class TestBypassPolicy:
    def region(self, bypass):
        return Region(region_id=0, name="r", base_word=0, size_words=64,
                      bypass_l2=bypass)

    def test_disabled_never_bypasses(self):
        policy = BypassPolicy(response_enabled=False, request_enabled=False)
        assert not policy.bypasses(self.region(bypass=True))

    def test_enabled_requires_annotated_region(self):
        policy = BypassPolicy(response_enabled=True, request_enabled=False)
        assert policy.bypasses(self.region(bypass=True))
        assert not policy.bypasses(self.region(bypass=False))
        assert not policy.bypasses(None)


# ----------------------------------------------------------------------
# Flag -> policy resolution per registered rung
# ----------------------------------------------------------------------

class TestResolvePolicies:
    def resolve(self, name):
        return resolve_policies(protocol(name), flex_table(),
                                SystemConfig())

    def test_mesi_baseline(self):
        p = self.resolve("MESI")
        assert not p.granularity.l2_fetch_on_write
        assert not p.writeback.l1_dirty_only
        assert not p.writeback.l2_dirty_only
        assert not p.mem_transfer.direct_to_l1
        assert not p.bypass.response_enabled

    def test_mmeml1_routes_memory_to_l1(self):
        assert self.resolve("MMemL1").mem_transfer.direct_to_l1

    def test_mdirty_wb_filters_both_writeback_levels(self):
        p = self.resolve("MDirtyWB")
        assert p.writeback.l1_dirty_only and p.writeback.l2_dirty_only

    def test_denovo_baseline_fetches_on_l2_write_miss(self):
        p = self.resolve("DeNovo")
        assert p.granularity.l2_fetch_on_write
        assert not p.writeback.l2_dirty_only

    def test_dvalidatel2_write_validates_and_filters(self):
        p = self.resolve("DValidateL2")
        assert not p.granularity.l2_fetch_on_write
        assert p.writeback.l2_dirty_only

    def test_dword_hybrid_keeps_line_fills_but_word_writebacks(self):
        p = self.resolve("DWordHybrid")
        assert p.granularity.l2_fetch_on_write     # line-granularity fills
        assert p.writeback.l2_dirty_only           # word-granularity WBs

    def test_dbypfull_enables_both_bypasses(self):
        p = self.resolve("DBypFull")
        assert p.bypass.response_enabled and p.bypass.request_enabled

    def test_flex_rungs_resolve_transfer_policy(self):
        assert self.resolve("DFlexL1").transfer.flex_l1
        assert not self.resolve("DFlexL1").transfer.flex_l2
        assert self.resolve("DFlexL2").transfer.flex_l2

    @pytest.mark.parametrize("name", registered_protocols())
    def test_every_registered_rung_resolves(self, name):
        p = self.resolve(name)
        # Only DeNovo rungs can fetch-on-write at the L2, and request
        # bypass never resolves without response bypass.
        if p.granularity.l2_fetch_on_write:
            assert protocol(name).kind == "denovo"
        assert p.bypass.request_enabled <= p.bypass.response_enabled
        # The writeback flags API works for every rung's policy.
        assert p.writeback.l1_flags([True, False]) in \
            ([True, False], [True])


# ----------------------------------------------------------------------
# Policies exercised through both protocol cores
# ----------------------------------------------------------------------

def _write_two_words_per_line(lines=4):
    """One core writes two words in each of ``lines`` distinct lines of
    the same L1 set, forcing dirty evictions in the tiny system."""
    ops = []
    cache_lines = TINY_SYSTEM.l1_kb * 1024 // TINY_SYSTEM.line_bytes
    sets = cache_lines // TINY_SYSTEM.l1_assoc
    span = sets * WORDS_PER_LINE * (TINY_SYSTEM.l1_assoc + lines)
    for i in range(lines * 8):
        base = (i * sets) * WORDS_PER_LINE % span
        stores(ops, base, base + 1)
    return {0: ops}


class TestWritebackPolicyThroughCores:
    def wb_data(self, result):
        return (result.traffic[T.WB][T.WB_L2_USED]
                + result.traffic[T.WB][T.WB_L2_WASTE]
                + result.traffic[T.WB][T.WB_MEM_USED]
                + result.traffic[T.WB][T.WB_MEM_WASTE])

    def test_mdirty_wb_reduces_mesi_writeback_traffic(self):
        ops = _write_two_words_per_line()
        base, _ = run_micro(ops, proto="MESI")
        dirty, _ = run_micro(ops, proto="MDirtyWB")
        assert self.wb_data(base) > 0
        assert self.wb_data(dirty) < self.wb_data(base)
        # The filtered writebacks carry no clean (waste) words.
        assert dirty.traffic[T.WB][T.WB_L2_WASTE] == 0.0
        assert dirty.traffic[T.WB][T.WB_MEM_WASTE] == 0.0

    def test_dword_hybrid_removes_mem_wb_waste_of_denovo(self):
        # fluidanimate at tiny scale evicts partially-dirty lines from
        # the L2 to memory: whole-line under baseline DeNovo (Mem
        # Waste), dirty-words-only under DWordHybrid.
        from repro.common.config import ScaleConfig
        from repro.core.simulator import simulate
        from repro.workloads import build_workload
        scale = ScaleConfig.tiny()
        workload = build_workload("fluidanimate", scale)
        config = scaled_system(scale)
        base = simulate(workload, "DeNovo", config)
        hybrid = simulate(workload, "DWordHybrid", config)
        assert base.traffic[T.WB][T.WB_MEM_WASTE] > 0
        assert hybrid.traffic[T.WB][T.WB_MEM_WASTE] == 0.0
        assert self.wb_data(hybrid) < self.wb_data(base)

    def test_mesi_baseline_writes_back_whole_lines(self):
        ops = _write_two_words_per_line()
        base, _ = run_micro(ops, proto="MESI")
        # Partially dirty lines shipped whole -> clean words become waste.
        assert base.traffic[T.WB][T.WB_L2_WASTE] > 0


class TestCoresComposePolicies:
    @pytest.mark.parametrize("name", ("MDirtyWB", "DWordHybrid"))
    def test_new_rungs_complete_micro_workloads(self, name):
        ops = {0: [], 1: []}
        loads(ops[0], 0, 8, 16)
        stores(ops[0], 0, 4)
        loads(ops[1], 0, 16)
        stores(ops[1], 128)
        result, system = run_micro(ops, proto=name)
        assert result.protocol == name
        assert result.exec_cycles > 0
        assert system.proto_sys.stats() == result.protocol_stats

    @pytest.mark.parametrize("name", registered_protocols())
    def test_stats_protocol_for_every_rung(self, name):
        ops = {0: []}
        stores(ops[0], 0, 1)
        loads(ops[0], 64)
        result, system = run_micro(ops, proto=name)
        stats = system.proto_sys.stats()
        assert isinstance(stats, dict)
        assert stats == result.protocol_stats
        assert all(isinstance(v, int) for v in stats.values())

    def test_core_factory_rejects_unknown_kind(self):
        class FakeProto:
            kind = "token-coherence"

        class FakeCtx:
            proto = FakeProto()

        with pytest.raises(KeyError, match="token-coherence"):
            build_protocol_system(FakeCtx())

"""Unit tests for the waste-characterization FSMs (paper Section 4.1)."""

import pytest

from repro.waste.profiler import (
    CacheLevelProfiler, Category, MemoryProfiler, ProfileEntry)


class TestProfileEntry:
    def test_first_classification_wins(self):
        e = ProfileEntry()
        assert e.is_pending
        e.classify(Category.USED)
        e.classify(Category.EVICT)
        assert e.category is Category.USED
        assert e.is_used

    def test_waste_categories_not_used(self):
        for cat in (Category.WRITE, Category.FETCH, Category.EVICT,
                    Category.INVALIDATE, Category.UNEVICTED):
            e = ProfileEntry()
            e.classify(cat)
            assert not e.is_used


class TestL1Fsm:
    """Figure 4.1: load->Used, store->Write, invalidate->Invalidate,
    evict->Evict, end->Unevicted, already-present->Fetch."""

    def test_load_marks_used(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_use(0, 100)
        assert p.count(Category.USED) == 1

    def test_store_marks_write(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_write(0, 100)
        assert p.count(Category.WRITE) == 1

    def test_use_after_use_counts_once(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_use(0, 100)
        p.on_use(0, 100)
        assert p.count(Category.USED) == 1

    def test_already_present_is_fetch(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_arrival(0, 100, already_present=True)
        assert p.count(Category.FETCH) == 1
        # First copy still pending and usable.
        p.on_use(0, 100)
        assert p.count(Category.USED) == 1

    def test_evict_before_use(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_evict(0, 100)
        assert p.count(Category.EVICT) == 1

    def test_invalidate_before_use(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_invalidate(0, 100)
        assert p.count(Category.INVALIDATE) == 1

    def test_evict_after_use_does_not_reclassify(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_use(0, 100)
        p.on_evict(0, 100)
        assert p.count(Category.USED) == 1
        assert p.count(Category.EVICT) == 0

    def test_finalize_unevicted(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_arrival(0, 200, already_present=False)
        p.on_use(0, 100)
        p.finalize()
        assert p.count(Category.UNEVICTED) == 1

    def test_units_are_independent(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_arrival(1, 100, already_present=False)
        p.on_use(0, 100)
        p.on_evict(1, 100)
        assert p.count(Category.USED) == 1
        assert p.count(Category.EVICT) == 1

    def test_refill_after_evict_is_new_entry(self):
        p = CacheLevelProfiler("L1")
        p.on_arrival(0, 100, already_present=False)
        p.on_evict(0, 100)
        p.on_arrival(0, 100, already_present=False)
        p.on_use(0, 100)
        assert p.count(Category.EVICT) == 1
        assert p.count(Category.USED) == 1

    def test_totals(self):
        p = CacheLevelProfiler("L1")
        for addr in (100, 200, 300):
            p.on_arrival(0, addr, already_present=False)
        p.on_use(0, 100)
        p.finalize()
        assert p.total_words() == 3
        assert p.waste_words() == 2

    def test_events_on_untracked_words_are_ignored(self):
        p = CacheLevelProfiler("L1")
        p.on_use(0, 999)
        p.on_evict(0, 999)
        assert p.total_words() == 0


class TestL2Fsm:
    """Figure 4.2: no invalidate transition at the L2."""

    def test_use_means_returned_in_response(self):
        p = CacheLevelProfiler("L2")
        p.on_arrival(3, 100, already_present=False)
        p.on_use(3, 100)
        assert p.count(Category.USED) == 1

    def test_write_means_overwritten_by_writeback(self):
        p = CacheLevelProfiler("L2")
        p.on_arrival(3, 100, already_present=False)
        p.on_write(3, 100)
        assert p.count(Category.WRITE) == 1

    def test_no_invalidate_at_l2(self):
        p = CacheLevelProfiler("L2")
        with pytest.raises(RuntimeError):
            p.on_invalidate(3, 100)

    def test_level_validation(self):
        with pytest.raises(ValueError):
            CacheLevelProfiler("L3")


class TestMemoryFsm:
    """Figure 4.3: (address, identifier) instances with refcounts."""

    def test_load_marks_used(self):
        p = MemoryProfiler()
        inst = p.fetch(100, l2_has_addr=False)
        p.install_copy(inst)
        p.on_load(inst)
        assert p.count(Category.USED) == 1

    def test_l2_presence_is_fetch_waste(self):
        p = MemoryProfiler()
        p.fetch(100, l2_has_addr=True)
        assert p.count(Category.FETCH) == 1

    def test_store_kills_all_pending_instances_of_addr(self):
        p = MemoryProfiler()
        a = p.fetch(100, l2_has_addr=False)
        b = p.fetch(100, l2_has_addr=False)
        other = p.fetch(200, l2_has_addr=False)
        p.on_store_addr(100)
        assert p.count(Category.WRITE) == 2
        assert other.is_pending

    def test_store_does_not_reclassify_used(self):
        p = MemoryProfiler()
        inst = p.fetch(100, l2_has_addr=False)
        p.on_load(inst)
        p.on_store_addr(100)
        assert p.count(Category.USED) == 1
        assert p.count(Category.WRITE) == 0

    def test_evict_waits_for_last_copy(self):
        p = MemoryProfiler()
        inst = p.fetch(100, l2_has_addr=False)
        p.install_copy(inst)   # L2 copy
        p.install_copy(inst)   # L1 copy
        p.drop_copy(inst, invalidated=False)
        assert inst.is_pending            # one copy still on-chip
        p.drop_copy(inst, invalidated=False)
        assert p.count(Category.EVICT) == 1

    def test_invalidate_category(self):
        p = MemoryProfiler()
        inst = p.fetch(100, l2_has_addr=False)
        p.install_copy(inst)
        p.drop_copy(inst, invalidated=True)
        assert p.count(Category.INVALIDATE) == 1

    def test_excess(self):
        p = MemoryProfiler()
        p.fetch_excess(100)
        assert p.count(Category.EXCESS) == 1
        assert p.total_words() == 1

    def test_finalize_unevicted(self):
        p = MemoryProfiler()
        p.fetch(100, l2_has_addr=False)
        p.finalize()
        assert p.count(Category.UNEVICTED) == 1

    def test_total_words(self):
        p = MemoryProfiler()
        p.fetch(100, False)
        p.fetch(100, False)
        p.fetch_excess(104)
        assert p.total_words() == 3

    def test_counts_sum_to_total_after_finalize(self):
        p = MemoryProfiler()
        a = p.fetch(1, False)
        b = p.fetch(2, False)
        c = p.fetch(3, True)
        p.fetch_excess(4)
        p.on_load(a)
        p.on_store_addr(2)
        p.finalize()
        assert sum(p.counts().values()) == p.total_words() == 4

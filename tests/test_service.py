"""Tests for the HTTP sweep service (repro.runner.service).

The headline contract is **single-flight dedup**: N concurrent
identical submissions cost exactly one simulation per distinct cell —
asserted with an execution counter wrapped around the simulate path,
not just by inspecting stats.  Around it: the priority queue, per-client
quotas (atomic 429), the job/results/stream HTTP endpoints, and the
registered queue-state sidecar.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro.runner.pool as pool_mod
from repro.runner import ResultStore, registered_sidecars
from repro.runner.service import (
    SERVICE_SIDECAR, BadSubmission, QuotaExceeded, SweepService,
    make_server)
from repro.runner.store import register_sidecar

RADIX_PAIR = {"workloads": ["radix"], "protocols": ["MESI", "DeNovo"],
              "scale": "tiny"}


@pytest.fixture
def counted_execute(monkeypatch):
    """Wrap the simulate path with a thread-safe execution counter."""
    calls = []
    lock = threading.Lock()
    real = pool_mod._execute_timed

    def wrapper(spec):
        with lock:
            calls.append((spec.workload, spec.protocol))
        return real(spec)

    monkeypatch.setattr(pool_mod, "_execute_timed", wrapper)
    return calls


@pytest.fixture
def service(tmp_path):
    svc = SweepService(store=ResultStore(tmp_path), jobs=1)
    yield svc
    svc.stop()


def wait_finished(service, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = service.job_status(job_id)
        if status["finished"]:
            return status
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish: "
                        f"{service.job_status(job_id)}")


# ----------------------------------------------------------------------
# Single-flight dedup
# ----------------------------------------------------------------------

class TestSingleFlight:
    def test_n_concurrent_submissions_one_simulation(
            self, service, counted_execute):
        """8 threads submit the identical 2-cell grid at once; every
        job finishes, yet the simulate path ran exactly twice."""
        barrier = threading.Barrier(8)
        jobs = []
        lock = threading.Lock()

        def client(i):
            barrier.wait()
            receipt = service.submit(dict(RADIX_PAIR), client=f"c{i}")
            with lock:
                jobs.append(receipt["job"])

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for job in jobs:
            status = wait_finished(service, job)
            assert status["failed"] == 0
            assert status["done"] == 2
        assert sorted(counted_execute) == [("radix", "DeNovo"),
                                           ("radix", "MESI")]
        stats = service.snapshot()["stats"]
        assert stats["simulations"] == 2
        assert stats["submitted_cells"] == 16
        # Every duplicate cell either coalesced in flight or hit the
        # store — none simulated again.
        assert stats["coalesced"] + stats["cache_hits"] == 14

    def test_protocol_rungs_sharing_a_store_key_stay_distinct(
            self, service, counted_execute):
        """Every protocol rung of one shape shares ``store_key()`` —
        dedup must key on the full (workload, protocol, key) identity,
        or one rung silently swallows the others."""
        receipt = service.submit(dict(RADIX_PAIR))
        keys = {c["key"] for c in receipt["cells"]}
        assert len(keys) == 1          # the collision this guards
        assert receipt["new"] == 2
        status = wait_finished(service, receipt["job"])
        assert status["done"] == 2
        assert len(counted_execute) == 2
        for cell in service.job_results(receipt["job"])["cells"]:
            assert cell["result"]["protocol"] == cell["protocol"]

    def test_resubmission_after_completion_is_cached(
            self, service, counted_execute):
        first = service.submit(dict(RADIX_PAIR))
        wait_finished(service, first["job"])
        again = service.submit(dict(RADIX_PAIR))
        assert again["cached"] == 2 and again["new"] == 0
        assert all(c["state"] == "done" for c in again["cells"])
        assert len(counted_execute) == 2


# ----------------------------------------------------------------------
# Priority and quotas
# ----------------------------------------------------------------------

class TestQueueDiscipline:
    def test_priority_orders_the_batch(self, tmp_path, monkeypatch):
        """With the executor blocked, a later priority-0 submission
        runs before an earlier priority-9 one."""
        order = []
        release = threading.Event()
        real = pool_mod._execute_timed

        def wrapper(spec):
            if spec.workload == "radix":
                release.wait(timeout=60.0)
            order.append(spec.workload)
            return real(spec)

        monkeypatch.setattr(pool_mod, "_execute_timed", wrapper)
        service = SweepService(store=ResultStore(tmp_path), jobs=1)
        try:
            blocker = service.submit({"workloads": ["radix"],
                                      "protocols": ["MESI"],
                                      "scale": "tiny"})
            time.sleep(0.3)            # let the executor take the batch
            low = service.submit({"workloads": ["stream"],
                                  "protocols": ["MESI"], "scale": "tiny",
                                  "priority": 9})
            high = service.submit({"workloads": ["FFT"],
                                   "protocols": ["MESI"], "scale": "tiny",
                                   "priority": 0})
            release.set()
            for receipt in (blocker, low, high):
                wait_finished(service, receipt["job"])
        finally:
            service.stop()
        assert order == ["radix", "FFT", "stream"]

    def test_quota_rejects_atomically(self, tmp_path):
        service = SweepService(store=ResultStore(tmp_path), jobs=1,
                               quota=1)
        try:
            with pytest.raises(QuotaExceeded):
                service.submit(dict(RADIX_PAIR), client="greedy")
            # Atomic: the rejected submission enqueued nothing.
            snapshot = service.snapshot()
            assert snapshot["queue_depth"] + snapshot["running"] == 0
            assert snapshot["stats"]["rejected_submissions"] == 1
            # A within-quota submission still works.
            receipt = service.submit({"workloads": ["radix"],
                                      "protocols": ["MESI"],
                                      "scale": "tiny"}, client="greedy")
            wait_finished(service, receipt["job"])
        finally:
            service.stop()

    def test_bad_submissions_rejected(self, service):
        with pytest.raises(BadSubmission):
            service.submit({"scale": "huge"})
        with pytest.raises(BadSubmission):
            service.submit({"workloads": ["radxi"], "scale": "tiny"})
        with pytest.raises(BadSubmission):
            service.submit({"scale": "tiny", "priority": "urgent"})
        with pytest.raises(BadSubmission):
            service.submit({"scale": "tiny", "tiles": 7})
        # Rejected before anything enqueued or counted.
        snapshot = service.snapshot()
        assert snapshot["stats"]["submissions"] == 0
        assert snapshot["queue_depth"] + snapshot["running"] == 0


# ----------------------------------------------------------------------
# The queue-state sidecar
# ----------------------------------------------------------------------

class TestSidecar:
    def test_registered_and_excluded_from_entries(self, service):
        assert SERVICE_SIDECAR in registered_sidecars()
        receipt = service.submit(dict(RADIX_PAIR))
        wait_finished(service, receipt["job"])
        sidecar = service.store.sidecar_path(SERVICE_SIDECAR)
        assert sidecar.exists()
        payload = json.loads(sidecar.read_text())
        assert payload["stats"]["submitted_cells"] == 2
        # The sidecar is not a cell: entries() sees only results.
        assert all(p.name != SERVICE_SIDECAR
                   for p in service.store.entries())
        assert len(list(service.store.entries())) == 2

    def test_register_sidecar_validates(self):
        assert register_sidecar("telemetry.json") == "telemetry.json"
        with pytest.raises(ValueError):
            register_sidecar("../escape.json")
        with pytest.raises(ValueError):
            register_sidecar("not-json.txt")


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------

class TestHttp:
    @pytest.fixture
    def server(self, tmp_path):
        service = SweepService(store=ResultStore(tmp_path), jobs=1)
        httpd = make_server(service, allow_shutdown=True)
        thread = threading.Thread(target=httpd.serve_forever,
                                  daemon=True)
        thread.start()
        host, port = httpd.socket.getsockname()[:2]
        yield f"http://{host}:{port}", service
        httpd.shutdown()
        httpd.server_close()
        service.stop()

    def call(self, base, method, path, payload=None, headers=()):
        data = (json.dumps(payload).encode()
                if payload is not None else None)
        req = urllib.request.Request(base + path, data=data,
                                     method=method, headers=dict(headers))
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read())

    def test_submit_poll_results_stream(self, server):
        base, service = server
        code, health = self.call(base, "GET", "/v1/health")
        assert code == 200 and health["status"] == "ok"
        code, receipt = self.call(base, "POST", "/v1/submit", RADIX_PAIR)
        assert code == 202 and receipt["total"] == 2
        job = receipt["job"]
        wait_finished(service, job)
        code, status = self.call(base, "GET", f"/v1/jobs/{job}")
        assert code == 200 and status["done"] == 2
        code, results = self.call(base, "GET", f"/v1/jobs/{job}/results")
        assert code == 200
        assert all(c["result"]["protocol"] == c["protocol"]
                   for c in results["cells"])
        with urllib.request.urlopen(base + f"/v1/jobs/{job}/stream",
                                    timeout=60) as resp:
            lines = [json.loads(line) for line in resp.read().splitlines()]
        assert len(lines) == 2
        assert all(line["state"] == "done" and line["result"]
                   for line in lines)
        cell = results["cells"][0]
        code, single = self.call(
            base, "GET", f"/v1/cells/{cell['workload']}/"
                         f"{cell['protocol']}/{cell['key']}")
        assert code == 200
        assert single["result"] == cell["result"]

    def test_http_error_codes(self, server):
        base, _ = server
        assert self.call(base, "GET", "/v1/jobs/j999999")[0] == 404
        assert self.call(base, "GET", "/v1/nope")[0] == 404
        assert self.call(base, "POST", "/v1/submit",
                         {"scale": "huge"})[0] == 400
        code, body = self.call(base, "GET", "/v1/backends")
        assert code == 200
        assert [b["name"] for b in body["backends"]] == ["serial", "pool",
                                                         "tcp"]

    def test_quota_is_429_over_http(self, tmp_path):
        service = SweepService(store=ResultStore(tmp_path), jobs=1,
                               quota=1)
        httpd = make_server(service)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.socket.getsockname()[:2]
        base = f"http://{host}:{port}"
        try:
            code, body = self.call(
                base, "POST", "/v1/submit", RADIX_PAIR,
                headers={"X-Repro-Client": "greedy"})
            assert code == 429 and "quota" in body["error"]
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.stop()

    def test_shutdown_gated(self, tmp_path):
        service = SweepService(store=ResultStore(tmp_path), jobs=1)
        httpd = make_server(service, allow_shutdown=False)
        threading.Thread(target=httpd.serve_forever, daemon=True).start()
        host, port = httpd.socket.getsockname()[:2]
        base = f"http://{host}:{port}"
        try:
            assert self.call(base, "POST", "/v1/shutdown")[0] == 403
        finally:
            httpd.shutdown()
            httpd.server_close()
            service.stop()

"""Energy subsystem tests: conservation audits and model behaviour.

The heart of this file is the per-rung conservation audit: the
flit-hops charged to NoC energy must *exactly* equal the finalized
``TrafficLedger`` totals (and the mesh's independent flit-hop counter),
and DRAM energy events must reconcile with the FR-FCFS model's command
counts.  Radix carries a warm-up iteration, so the audit also proves
the energy counters follow the post-warm-up measurement window.
"""

import math

import pytest

from repro.common.config import (
    ENERGY_MODELS, EnergyModelConfig, PROTOCOL_ORDER, ScaleConfig,
    energy_model, registered_energy_models, scaled_system)
from repro.core.simulator import simulate
from repro.energy import COMPONENTS, EnergyStats, compute_energy
from repro.network.traffic import split_flit_hops
from repro.runner.store import result_from_dict, result_to_dict
from repro.workloads import build_workload

SCALE = ScaleConfig.tiny()
CONFIG = scaled_system(SCALE)


@pytest.fixture(scope="module")
def ladder_results():
    """Tiny radix under every paper rung (warm-up exercises the reset)."""
    workload = build_workload("radix", SCALE)
    return {proto: simulate(workload, proto, CONFIG)
            for proto in PROTOCOL_ORDER}


class TestConservation:
    def test_noc_energy_charge_equals_ledger_totals_per_rung(
            self, ladder_results):
        """Data+control flit-hops charged to NoC energy == ledger totals."""
        for proto, result in ladder_results.items():
            stats = compute_energy(result, "45nm", CONFIG)
            ledger_total = result.traffic_total()
            charged = stats.detail["noc_flit_hops"]
            assert charged == pytest.approx(ledger_total, abs=1e-9), proto
            data, ctl = split_flit_hops(result.traffic)
            assert data + ctl == pytest.approx(ledger_total, abs=1e-9), proto
            em = energy_model("45nm")
            per_hop = (em.router_flit_hop_pj + em.link_flit_hop_pj) * 1e-12
            assert stats.dynamic["noc"] == pytest.approx(
                ledger_total * per_hop), proto

    def test_mesh_counter_reconciles_with_ledger_per_rung(
            self, ladder_results):
        """The mesh's independent flit-hop count matches the ledger —
        including after radix's warm-up reset."""
        for proto, result in ladder_results.items():
            assert result.energy_counters["noc_flit_hops"] == pytest.approx(
                result.traffic_total(), abs=1e-9), proto

    def test_dram_energy_events_reconcile_with_commands_per_rung(
            self, ladder_results):
        em = energy_model("45nm")
        for proto, result in ladder_results.items():
            stats = compute_energy(result, em, CONFIG)
            dram = result.dram_stats
            counters = result.energy_counters
            # Command-count invariants of the FR-FCFS model (whole run).
            assert dram["activates"] == dram["row_misses"], proto
            assert dram["precharges"] <= dram["activates"], proto
            assert (dram["row_hits"] + dram["row_misses"]
                    == dram["reads"] + dram["writes"]), proto
            # The window-scoped counters energy charges from can never
            # exceed the whole-run command counts.
            for key in ("reads", "writes", "activates", "precharges"):
                assert 0 <= counters[f"dram_{key}"] <= dram[key], proto
            # Energy lines are exactly window commands x per-event cost.
            accesses = counters["dram_reads"] + counters["dram_writes"]
            assert stats.detail["dram_activates"] == pytest.approx(
                counters["dram_activates"] * em.dram_activate_pj
                * 1e-12), proto
            assert stats.detail["dram_precharges"] == pytest.approx(
                counters["dram_precharges"] * em.dram_precharge_pj
                * 1e-12), proto
            assert stats.detail["dram_accesses"] == pytest.approx(
                accesses * em.dram_access_pj * 1e-12), proto
            assert stats.detail["mc_requests"] == pytest.approx(
                accesses * em.mc_request_pj * 1e-12), proto

    def test_dram_energy_follows_the_measurement_window(
            self, ladder_results):
        """Radix warms up a full iteration; the warm-up's DRAM fetches
        must not be charged energy (MESI refetches nothing after
        warm-up, so its window command counts are far below the run
        totals)."""
        result = ladder_results["MESI"]
        counters = result.energy_counters
        whole_run = result.dram_stats["reads"] + result.dram_stats["writes"]
        window = counters["dram_reads"] + counters["dram_writes"]
        assert window < whole_run
        # A workload without warm-up charges every command.
        import dataclasses
        scale = ScaleConfig.tiny()
        workload = dataclasses.replace(build_workload("stream", scale),
                                       warmup_barriers=0)
        r = simulate(workload, "MESI", scaled_system(scale))
        assert (r.energy_counters["dram_reads"]
                + r.energy_counters["dram_writes"]
                == r.dram_stats["reads"] + r.dram_stats["writes"])
        assert (r.energy_counters["dram_activates"]
                == r.dram_stats["activates"])

    def test_counters_present_and_sane(self, ladder_results):
        for proto, result in ladder_results.items():
            counters = result.energy_counters
            assert counters["l1_probes"] > 0, proto
            assert counters["l2_probes"] > 0, proto
            assert counters["noc_packets"] > 0, proto
            assert all(v >= 0 for v in counters.values()), proto
        # Bloom activity exists exactly on the request-bypass rung.
        assert ladder_results["DBypFull"].energy_counters[
            "bloom_shadow_checks"] > 0
        assert "bloom_shadow_checks" not in ladder_results[
            "MESI"].energy_counters


class TestEnergyModel:
    def test_breakdown_covers_all_components(self, ladder_results):
        stats = compute_energy(ladder_results["MESI"], "45nm", CONFIG)
        assert set(stats.dynamic) == set(COMPONENTS)
        assert set(stats.static) == set(COMPONENTS)
        assert stats.total == pytest.approx(
            sum(stats.components().values()))
        assert stats.total > 0

    def test_derived_metrics(self, ladder_results):
        stats = compute_energy(ladder_results["MESI"], "45nm", CONFIG)
        assert stats.exec_seconds == pytest.approx(
            ladder_results["MESI"].exec_cycles / (CONFIG.core_ghz * 1e9))
        assert stats.edp == pytest.approx(stats.total * stats.exec_seconds)
        assert stats.ed2p == pytest.approx(
            stats.total * stats.exec_seconds ** 2)
        assert stats.energy_per_useful_word > 0

    def test_presets_scale_dynamic_energy(self, ladder_results):
        result = ladder_results["MESI"]
        e45 = compute_energy(result, "45nm", CONFIG)
        e22 = compute_energy(result, "22nm", CONFIG)
        for component in COMPONENTS:
            assert e22.dynamic[component] <= e45.dynamic[component]
        assert e22.total < e45.total

    def test_energy_derivable_from_stored_result(self, ladder_results):
        """Round-tripping through the store changes nothing — energy is
        post-hoc arithmetic, no re-simulation required."""
        result = ladder_results["DBypFull"]
        restored = result_from_dict(result_to_dict(result))
        direct = compute_energy(result, "45nm", CONFIG)
        derived = compute_energy(restored, "45nm", CONFIG)
        assert derived.total == pytest.approx(direct.total)
        assert derived.components() == direct.components()

    def test_pre_counter_results_still_account_partial_energy(
            self, ladder_results):
        """Old cache files (no energy_counters) degrade gracefully."""
        data = result_to_dict(ladder_results["MESI"])
        del data["energy_counters"]
        stats = compute_energy(result_from_dict(data), "45nm", CONFIG)
        stats.validate()
        assert stats.dynamic["noc"] > 0      # from traffic
        assert stats.dynamic["dram"] > 0     # from dram_stats
        assert stats.dynamic["l1"] >= 0

    def test_validation_rejects_nan_and_negative(self):
        stats = EnergyStats(
            workload="w", protocol="p", model="m", exec_seconds=1.0,
            dynamic={c: 0.0 for c in COMPONENTS},
            static={c: 0.0 for c in COMPONENTS})
        stats.validate()
        stats.dynamic["noc"] = float("nan")
        with pytest.raises(ValueError, match="noc"):
            stats.validate()
        stats.dynamic["noc"] = -1.0
        with pytest.raises(ValueError, match="noc"):
            stats.validate()

    def test_preset_registry_lookup_and_suggestions(self):
        assert registered_energy_models() == ("45nm", "22nm")
        assert energy_model("45nm").process_nm == 45
        with pytest.raises(KeyError, match="did you mean"):
            energy_model("45mn")
        with pytest.raises(ValueError, match="non-negative"):
            EnergyModelConfig(
                name="bad", process_nm=1, core_cycle_pj=-1.0,
                l1_probe_pj=0, l1_word_pj=0, l2_probe_pj=0, l2_word_pj=0,
                bloom_op_pj=0, router_flit_hop_pj=0, link_flit_hop_pj=0,
                mc_request_pj=0, dram_activate_pj=0, dram_precharge_pj=0,
                dram_access_pj=0, core_leak_mw=0, l1_leak_mw=0,
                l2_leak_mw=0, noc_leak_mw=0, mc_leak_mw=0, dram_leak_mw=0)

    def test_leakage_scales_with_machine_shape(self, ladder_results):
        result = ladder_results["MESI"]
        small = compute_energy(result, "45nm", scaled_system(SCALE,
                                                             num_tiles=4))
        big = compute_energy(result, "45nm", scaled_system(SCALE,
                                                           num_tiles=64))
        # Tile-count-scaled components grow with the machine; the MC and
        # DRAM components scale with the controller count, which stays
        # at four across these shapes.
        for component in ("core", "l1", "l2", "noc"):
            assert big.static[component] > small.static[component]
        for component in ("mc", "dram"):
            assert big.static[component] == pytest.approx(
                small.static[component])


class TestEnergyFigure:
    def test_figure_normalizes_to_mesi(self, ladder_results):
        from repro.analysis.energy import figure_energy
        grid = {"radix": ladder_results}
        fig = figure_energy(grid, "45nm", CONFIG)
        assert fig.bar_total("radix", "MESI") == pytest.approx(100.0)
        for proto in PROTOCOL_ORDER:
            assert fig.bar_total("radix", proto) > 0
            for label in fig.segment_labels:
                value = fig.segment("radix", proto, label)
                assert math.isfinite(value) and value >= 0

    def test_edp_table_and_report_section_render_for_both_presets(
            self, ladder_results):
        from repro.analysis.energy import edp_table, report_section
        grid = {"radix": ladder_results}
        section = report_section(grid, config=CONFIG)
        assert section.startswith("## Energy and EDP")
        for preset in registered_energy_models():
            assert f"[{preset}]" in section
            assert f"({preset} preset)" in edp_table(grid, preset, CONFIG)
        assert "DBypFull vs MESI" in section

    def test_scaling_figure_has_energy_metric(self):
        from repro.analysis.scaling import figure_scaling
        scale = ScaleConfig.tiny()
        shapes = {}
        for tiles in (4, 16):
            w = build_workload("stream", scale, num_cores=tiles)
            r = simulate(w, "MESI", scaled_system(scale, num_tiles=tiles))
            shapes[tiles] = {"stream": {"MESI": r}}
        fig = figure_scaling(shapes)
        assert fig.metric("stream", "MESI", 4, "energy") > 0
        assert fig.metric("stream", "MESI", 16, "energy") > 0
        assert "Total energy" in fig.render()

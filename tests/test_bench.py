"""Unit tests for the perf-record compare gate (repro.bench)."""

import json

import pytest

from repro.bench import (
    COMPILED_SPEEDUP_FLOOR, REGRESSION_THRESHOLD, SCHEMA_VERSION,
    TCP_BACKEND_FLOOR, TCP_WORKERS, WHEEL_SPEEDUP_FLOOR, DirtyBaseline,
    RecordMismatch, check_backend_floor, check_engine_floor,
    check_scheduler_floor, compare_records, write_record)


def _cell(key, eps):
    # Cell keys are (workload, protocol, tiles) — legacy pre-engine
    # shape — (workload, protocol, tiles, engine), or the full
    # (workload, protocol, tiles, engine, scheduler).
    cell = {"workload": key[0], "protocol": key[1], "num_tiles": key[2],
            "seconds": 1.0, "events": int(eps),
            "events_per_second": eps, "exec_cycles": 1}
    if len(key) >= 4:
        cell["engine"] = key[3]
    if len(key) == 5:
        cell["scheduler"] = key[4]
    return cell


def _record(eps_by_cell, schema_version=SCHEMA_VERSION,
            bench="sweep_radix_tiny", git_describe="test"):
    return {
        "bench": bench,
        "schema_version": schema_version,
        "git_describe": git_describe,
        "python": "3.x",
        "cells": [_cell(key, eps) for key, eps in eps_by_cell.items()],
    }


CELLS = {("radix", "MESI", 16): 50_000.0,
         ("radix", "DeNovo", 16): 30_000.0}


class TestCompareRecords:
    def test_identical_records_pass(self):
        outcome = compare_records(_record(CELLS), _record(CELLS))
        assert outcome["ok"]
        assert len(outcome["cells"]) == len(CELLS)

    def test_speedup_passes(self):
        faster = {k: v * 2 for k, v in CELLS.items()}
        outcome = compare_records(_record(CELLS), _record(faster))
        assert outcome["ok"]
        assert all(c["ratio"] == 2.0 for c in outcome["cells"])

    def test_small_regression_warns_but_passes(self):
        slower = {k: v * (1 - REGRESSION_THRESHOLD / 2)
                  for k, v in CELLS.items()}
        outcome = compare_records(_record(CELLS), _record(slower))
        assert outcome["ok"]
        assert any(line.startswith("warn") for line in outcome["lines"])

    def test_large_regression_fails(self):
        slower = dict(CELLS)
        slower[("radix", "MESI", 16)] = CELLS[("radix", "MESI", 16)] * 0.5
        outcome = compare_records(_record(CELLS), _record(slower))
        assert not outcome["ok"]
        assert any(line.startswith("FAIL") for line in outcome["lines"])

    def test_missing_cell_fails(self):
        partial = {("radix", "MESI", 16): 50_000.0}
        outcome = compare_records(_record(CELLS), _record(partial))
        assert not outcome["ok"]

    def test_extra_cell_is_noted_not_failed(self):
        extra = dict(CELLS)
        extra[("radix", "MESI", 4)] = 60_000.0
        outcome = compare_records(_record(CELLS), _record(extra))
        assert outcome["ok"]
        assert any(line.startswith("note") for line in outcome["lines"])

    def test_refuses_missing_schema_version(self):
        legacy = _record(CELLS)
        del legacy["schema_version"]
        with pytest.raises(RecordMismatch, match="schema_version"):
            compare_records(legacy, _record(CELLS))

    def test_refuses_mismatched_schema_version(self):
        with pytest.raises(RecordMismatch, match="schema_version"):
            compare_records(_record(CELLS, schema_version=SCHEMA_VERSION + 1),
                            _record(CELLS))

    def test_refuses_different_bench_suite(self):
        with pytest.raises(RecordMismatch, match="different suites"):
            compare_records(_record(CELLS, bench="other"), _record(CELLS))

    def test_custom_threshold(self):
        slower = {k: v * 0.9 for k, v in CELLS.items()}
        strict = compare_records(_record(CELLS), _record(slower),
                                 threshold=0.05)
        assert not strict["ok"]
        lax = compare_records(_record(CELLS), _record(slower),
                              threshold=0.2)
        assert lax["ok"]

    def test_engine_keyed_cells_compare_independently(self):
        # A regression in the compiled cell must not hide behind a
        # healthy reference cell for the same (workload, proto, shape).
        base = {("radix", "MESI", 16, "reference"): 50_000.0,
                ("radix", "MESI", 16, "compiled"): 65_000.0}
        current = dict(base)
        current[("radix", "MESI", 16, "compiled")] = 30_000.0
        outcome = compare_records(_record(base), _record(current))
        assert not outcome["ok"]
        failed = [l for l in outcome["lines"] if l.startswith("FAIL")]
        assert len(failed) == 1
        assert "compiled" in failed[0]

    def test_legacy_cells_default_to_reference_engine(self):
        # Pre-engine records (no "engine" key) keep comparing against
        # engine-stamped reference cells.
        stamped = {("radix", "MESI", 16, "reference"): 50_000.0}
        legacy = {("radix", "MESI", 16): 50_000.0}
        outcome = compare_records(_record(legacy), _record(stamped))
        assert outcome["ok"]
        assert len(outcome["cells"]) == 1

    def test_scheduler_keyed_cells_compare_independently(self):
        # A regression in the wheel cell must not hide behind a healthy
        # heap cell for the same (workload, proto, shape, engine).
        base = {("radix", "MESI", 16, "reference", "heap"): 50_000.0,
                ("radix", "MESI", 16, "reference", "wheel"): 51_000.0}
        current = dict(base)
        current[("radix", "MESI", 16, "reference", "wheel")] = 30_000.0
        outcome = compare_records(_record(base), _record(current))
        assert not outcome["ok"]
        failed = [l for l in outcome["lines"] if l.startswith("FAIL")]
        assert len(failed) == 1
        assert "wheel" in failed[0]

    def test_legacy_cells_default_to_heap_scheduler(self):
        stamped = {("radix", "MESI", 16, "reference", "heap"): 50_000.0}
        legacy = {("radix", "MESI", 16, "reference"): 50_000.0}
        outcome = compare_records(_record(legacy), _record(stamped))
        assert outcome["ok"]
        assert len(outcome["cells"]) == 1


ENGINE_CELLS = {("radix", "MESI", 16, "reference"): 50_000.0,
                ("radix", "MESI", 16, "compiled"): 65_000.0,
                ("radix", "DeNovo", 16, "reference"): 30_000.0,
                ("radix", "DeNovo", 16, "compiled"): 37_000.0}


class TestEngineFloor:
    def test_compiled_above_floor_passes(self):
        outcome = check_engine_floor(_record(ENGINE_CELLS))
        assert outcome["ok"]
        assert len(outcome["cells"]) == 2
        assert all(c["speedup"] > COMPILED_SPEEDUP_FLOOR
                   for c in outcome["cells"])

    def test_compiled_below_floor_fails(self):
        slow = dict(ENGINE_CELLS)
        slow[("radix", "MESI", 16, "compiled")] = 45_000.0
        outcome = check_engine_floor(_record(slow))
        assert not outcome["ok"]
        assert any(l.startswith("FAIL") and "MESI" in l
                   for l in outcome["lines"])

    def test_custom_floor(self):
        outcome = check_engine_floor(_record(ENGINE_CELLS), floor=1.5)
        assert not outcome["ok"]

    def test_no_compiled_cells_is_vacuous_pass(self):
        outcome = check_engine_floor(_record(CELLS))
        assert outcome["ok"]
        assert not outcome["cells"]
        assert any(l.startswith("note") for l in outcome["lines"])

    def test_compiled_cell_without_reference_is_skipped(self):
        orphan = {("radix", "MESI", 16, "compiled"): 65_000.0}
        outcome = check_engine_floor(_record(orphan))
        assert outcome["ok"]
        assert not outcome["cells"]

    def test_pairs_within_one_scheduler_only(self):
        # A compiled/wheel cell must gate against reference/wheel, not
        # reference/heap.
        cells = {("radix", "MESI", 16, "reference", "heap"): 80_000.0,
                 ("radix", "MESI", 16, "reference", "wheel"): 50_000.0,
                 ("radix", "MESI", 16, "compiled", "wheel"): 65_000.0}
        outcome = check_engine_floor(_record(cells))
        assert outcome["ok"]
        assert len(outcome["cells"]) == 1
        assert outcome["cells"][0]["speedup"] == 1.3


SCHEDULER_CELLS = {
    ("radix", "MESI", 16, "reference", "heap"): 50_000.0,
    ("radix", "MESI", 16, "reference", "wheel"): 50_500.0,
    ("radix", "MESI", 16, "compiled", "heap"): 65_000.0,
    ("radix", "MESI", 16, "compiled", "wheel"): 66_300.0,
}


class TestSchedulerFloor:
    def test_wheel_at_parity_passes(self):
        outcome = check_scheduler_floor(_record(SCHEDULER_CELLS))
        assert outcome["ok"]
        assert len(outcome["cells"]) == 2
        assert all(c["speedup"] >= WHEEL_SPEEDUP_FLOOR
                   for c in outcome["cells"])

    def test_wheel_below_floor_fails_on_aggregate(self):
        slow = dict(SCHEDULER_CELLS)
        slow[("radix", "MESI", 16, "compiled", "wheel")] = 48_000.0
        outcome = check_scheduler_floor(_record(slow))
        assert not outcome["ok"]
        assert outcome["aggregate"] < WHEEL_SPEEDUP_FLOOR
        # The offending cell is marked individually, the verdict is
        # the pooled aggregate line.
        assert any(l.startswith("low") and "compiled" in l
                   for l in outcome["lines"])
        assert any(l.startswith("FAIL") and "aggregate" in l
                   for l in outcome["lines"])

    def test_single_noisy_cell_does_not_flip_a_healthy_aggregate(self):
        # One cell dips just under the floor while the rest sit above:
        # the pooled ratio stays >= floor, so the gate holds (per-cell
        # gating at this threshold would flake on exactly this shape).
        noisy = dict(SCHEDULER_CELLS)
        noisy[("radix", "MESI", 16, "reference", "wheel")] = 46_000.0
        outcome = check_scheduler_floor(_record(noisy))
        assert outcome["ok"]
        assert any(l.startswith("low") for l in outcome["lines"])

    def test_custom_floor(self):
        outcome = check_scheduler_floor(_record(SCHEDULER_CELLS),
                                        floor=1.5)
        assert not outcome["ok"]

    def test_no_scheduler_pairs_is_vacuous_pass(self):
        outcome = check_scheduler_floor(_record(ENGINE_CELLS))
        assert outcome["ok"]
        assert not outcome["cells"]
        assert any(l.startswith("note") for l in outcome["lines"])

    def test_wheel_cell_without_heap_is_skipped(self):
        orphan = {("radix", "MESI", 16, "reference", "wheel"): 50_000.0}
        outcome = check_scheduler_floor(_record(orphan))
        assert outcome["ok"]
        assert not outcome["cells"]


def _backend_record(tcp_cps, warm_cps=2.0, workers=TCP_WORKERS,
                    fallback=0):
    record = _record(CELLS)
    record["sweep_throughput"] = {
        "cells": 4, "jobs": 2,
        "backends": {
            "serial": {"seconds": 4.0, "cells_per_second": 1.0},
            "pool": {"cold_seconds": 3.0, "cold_cells_per_second": 1.33,
                     "warm_seconds": 4 / warm_cps,
                     "warm_cells_per_second": warm_cps},
            "tcp": {"workers": workers,
                    "serial_fallback_cells": fallback,
                    "seconds": 4 / tcp_cps,
                    "cells_per_second": tcp_cps,
                    "vs_warm_pool": round(tcp_cps / warm_cps, 3)},
        },
    }
    return record


class TestBackendFloor:
    def test_tcp_at_parity_passes(self):
        outcome = check_backend_floor(_backend_record(tcp_cps=2.0))
        assert outcome["ok"]
        assert outcome["ratio"] == 1.0

    def test_tcp_below_floor_fails(self):
        slow = _backend_record(tcp_cps=2.0 * (TCP_BACKEND_FLOOR - 0.05))
        outcome = check_backend_floor(slow)
        assert not outcome["ok"]
        assert any(l.startswith("FAIL") for l in outcome["lines"])

    def test_custom_floor(self):
        outcome = check_backend_floor(_backend_record(tcp_cps=2.0),
                                      floor=1.5)
        assert not outcome["ok"]

    def test_pre_v6_record_is_vacuous_pass(self):
        # Old records carry the flat pool-only shape (or nothing).
        record = _record(CELLS)
        record["sweep_throughput"] = {"cells": 4, "jobs": 2,
                                      "warm_cells_per_second": 2.0}
        outcome = check_backend_floor(record)
        assert outcome["ok"] and outcome["ratio"] is None
        assert any("pre-v6" in l for l in outcome["lines"])
        outcome = check_backend_floor(_record(CELLS))
        assert outcome["ok"] and outcome["ratio"] is None

    def test_degraded_measurement_skips_not_fails(self):
        # A worker that failed to connect (or serial fallback) makes
        # the ratio meaningless — skip with a note, don't fail.
        outcome = check_backend_floor(
            _backend_record(tcp_cps=0.1, workers=TCP_WORKERS - 1))
        assert outcome["ok"] and outcome["ratio"] is None
        assert any("degraded" in l for l in outcome["lines"])
        outcome = check_backend_floor(
            _backend_record(tcp_cps=0.1, fallback=2))
        assert outcome["ok"] and outcome["ratio"] is None


class TestWriteRecord:
    """The committed baseline must never be stamped from a dirty tree."""

    def test_dirty_describe_refused_for_committed_baseline(self, tmp_path):
        record = _record(CELLS, git_describe="abc1234-dirty")
        with pytest.raises(DirtyBaseline, match="commit the tree first"):
            write_record(record, str(tmp_path / "BENCH_sweep.json"))
        assert not (tmp_path / "BENCH_sweep.json").exists()

    def test_unknown_describe_refused_for_committed_baseline(self, tmp_path):
        record = _record(CELLS, git_describe="unknown")
        with pytest.raises(DirtyBaseline):
            write_record(record, str(tmp_path / "BENCH_sweep.json"))

    def test_clean_describe_writes_committed_baseline(self, tmp_path):
        record = _record(CELLS, git_describe="abc1234")
        path = tmp_path / "BENCH_sweep.json"
        write_record(record, str(path))
        assert json.loads(path.read_text()) == record

    def test_scratch_path_allows_dirty_describe(self, tmp_path):
        record = _record(CELLS, git_describe="abc1234-dirty")
        path = tmp_path / "BENCH_scratch.json"
        write_record(record, str(path))
        assert json.loads(path.read_text()) == record


class TestGitDescribe:
    """git_describe must degrade to "unknown" cleanly, never crash."""

    def test_git_missing_returns_unknown(self, monkeypatch):
        import subprocess
        from repro import bench

        def no_git(*args, **kwargs):
            raise FileNotFoundError("git")

        monkeypatch.setattr(subprocess, "run", no_git)
        assert bench.git_describe() == "unknown"

    def test_not_a_repo_returns_unknown(self, monkeypatch):
        import subprocess
        from repro import bench

        def not_a_repo(*args, **kwargs):
            return subprocess.CompletedProcess(
                args[0], returncode=128, stdout="",
                stderr="fatal: not a git repository")

        monkeypatch.setattr(subprocess, "run", not_a_repo)
        assert bench.git_describe() == "unknown"

    def test_empty_output_returns_unknown(self, monkeypatch):
        import subprocess
        from repro import bench
        monkeypatch.setattr(
            subprocess, "run",
            lambda *a, **k: subprocess.CompletedProcess(
                a[0], returncode=0, stdout="\n", stderr=""))
        assert bench.git_describe() == "unknown"

    def test_success_passes_describe_through(self, monkeypatch):
        import subprocess
        from repro import bench
        seen = {}

        def ok(*args, **kwargs):
            seen.update(kwargs)
            return subprocess.CompletedProcess(
                args[0], returncode=0, stdout="abc1234-dirty\n", stderr="")

        monkeypatch.setattr(subprocess, "run", ok)
        assert bench.git_describe() == "abc1234-dirty"
        # Hardening: stderr captured (no terminal noise), cwd pinned to
        # the package (not the caller's directory), stdin closed.
        assert seen["capture_output"] is True
        assert seen["cwd"]
        assert seen["stdin"] is subprocess.DEVNULL

    def test_timeout_returns_unknown(self, monkeypatch):
        import subprocess
        from repro import bench

        def too_slow(*args, **kwargs):
            raise subprocess.TimeoutExpired(args[0], 10)

        monkeypatch.setattr(subprocess, "run", too_slow)
        assert bench.git_describe() == "unknown"

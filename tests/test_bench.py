"""Unit tests for the perf-record compare gate (repro.bench)."""

import pytest

from repro.bench import (
    REGRESSION_THRESHOLD, SCHEMA_VERSION, RecordMismatch, compare_records)


def _record(eps_by_cell, schema_version=SCHEMA_VERSION, bench="sweep_radix_tiny"):
    return {
        "bench": bench,
        "schema_version": schema_version,
        "git_describe": "test",
        "python": "3.x",
        "cells": [
            {"workload": w, "protocol": p, "num_tiles": t,
             "seconds": 1.0, "events": int(eps),
             "events_per_second": eps, "exec_cycles": 1}
            for (w, p, t), eps in eps_by_cell.items()],
    }


CELLS = {("radix", "MESI", 16): 50_000.0,
         ("radix", "DeNovo", 16): 30_000.0}


class TestCompareRecords:
    def test_identical_records_pass(self):
        outcome = compare_records(_record(CELLS), _record(CELLS))
        assert outcome["ok"]
        assert len(outcome["cells"]) == len(CELLS)

    def test_speedup_passes(self):
        faster = {k: v * 2 for k, v in CELLS.items()}
        outcome = compare_records(_record(CELLS), _record(faster))
        assert outcome["ok"]
        assert all(c["ratio"] == 2.0 for c in outcome["cells"])

    def test_small_regression_warns_but_passes(self):
        slower = {k: v * (1 - REGRESSION_THRESHOLD / 2)
                  for k, v in CELLS.items()}
        outcome = compare_records(_record(CELLS), _record(slower))
        assert outcome["ok"]
        assert any(line.startswith("warn") for line in outcome["lines"])

    def test_large_regression_fails(self):
        slower = dict(CELLS)
        slower[("radix", "MESI", 16)] = CELLS[("radix", "MESI", 16)] * 0.5
        outcome = compare_records(_record(CELLS), _record(slower))
        assert not outcome["ok"]
        assert any(line.startswith("FAIL") for line in outcome["lines"])

    def test_missing_cell_fails(self):
        partial = {("radix", "MESI", 16): 50_000.0}
        outcome = compare_records(_record(CELLS), _record(partial))
        assert not outcome["ok"]

    def test_extra_cell_is_noted_not_failed(self):
        extra = dict(CELLS)
        extra[("radix", "MESI", 4)] = 60_000.0
        outcome = compare_records(_record(CELLS), _record(extra))
        assert outcome["ok"]
        assert any(line.startswith("note") for line in outcome["lines"])

    def test_refuses_missing_schema_version(self):
        legacy = _record(CELLS)
        del legacy["schema_version"]
        with pytest.raises(RecordMismatch, match="schema_version"):
            compare_records(legacy, _record(CELLS))

    def test_refuses_mismatched_schema_version(self):
        with pytest.raises(RecordMismatch, match="schema_version"):
            compare_records(_record(CELLS, schema_version=SCHEMA_VERSION + 1),
                            _record(CELLS))

    def test_refuses_different_bench_suite(self):
        with pytest.raises(RecordMismatch, match="different suites"):
            compare_records(_record(CELLS, bench="other"), _record(CELLS))

    def test_custom_threshold(self):
        slower = {k: v * 0.9 for k, v in CELLS.items()}
        strict = compare_records(_record(CELLS), _record(slower),
                                 threshold=0.05)
        assert not strict["ok"]
        lax = compare_records(_record(CELLS), _record(slower),
                              threshold=0.2)
        assert lax["ok"]

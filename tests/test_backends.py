"""Tests for the pluggable execution backends (repro.runner.backends).

The load-bearing contract: every backend produces **bit-identical**
results for the same specs — the backend axis changes where cells run,
never what they compute — so store files written through any backend
are byte-equal and share the same store keys.  The tcp backend is
exercised three ways: with two real ``python -m repro worker``
subprocesses over loopback, with misbehaving fake workers (a zombie
that never heartbeats, a worker that dies mid-lease), and with no
workers at all (serial degradation).
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.common.config import ScaleConfig, scaled_system
from repro.runner import (
    JobSpec, ResultStore, expand_grid, result_to_dict, spec_from_dict,
    spec_to_dict, sweep)
from repro.runner.backends import (
    BACKEND_NAMES, PoolBackend, SerialBackend, TcpBackend,
    backend_matrix, resolve_backend, validate_backend)
from repro.runner.backends.wire import (
    MAX_FRAME, WireError, recv_msg, send_msg)
from repro.runner.worker import parse_endpoint

TINY = ScaleConfig.tiny()
TINY_SYSTEM = scaled_system(TINY)
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def tiny_specs(workloads=("radix",), protocols=("MESI", "DeNovo")):
    return expand_grid(workloads, protocols, TINY, TINY_SYSTEM)


def store_blob(store: ResultStore):
    """Every cell file as {name: bytes} (sidecars excluded)."""
    return {p.name: p.read_bytes() for p in store.entries()}


def spawn_worker(address):
    host, port = address
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH")
                          else []))
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker",
         "--connect", f"{host}:{port}"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


# ----------------------------------------------------------------------
# Resolution and registry
# ----------------------------------------------------------------------

class TestResolution:
    def test_names_are_registered(self):
        assert BACKEND_NAMES == ("serial", "pool", "tcp")
        for name in BACKEND_NAMES:
            assert validate_backend(name) == name

    def test_unknown_backend_suggests_near_miss(self):
        with pytest.raises(KeyError) as exc:
            validate_backend("seriall")
        assert "did you mean 'serial'" in str(exc.value)
        with pytest.raises(KeyError) as exc:
            validate_backend("tpc")
        assert "tcp" in str(exc.value)

    def test_none_keeps_classic_behaviour(self):
        backend, owned = resolve_backend(None, jobs=1)
        assert isinstance(backend, SerialBackend) and owned
        backend, owned = resolve_backend(None, jobs=3)
        assert isinstance(backend, PoolBackend) and owned
        assert backend.jobs == 3

    def test_instance_passes_through_unowned(self):
        mine = SerialBackend()
        backend, owned = resolve_backend(mine)
        assert backend is mine and not owned

    def test_names_resolve(self):
        backend, owned = resolve_backend("serial")
        assert isinstance(backend, SerialBackend) and owned
        backend, owned = resolve_backend("pool", jobs=2)
        assert isinstance(backend, PoolBackend) and backend.jobs == 2
        backend, owned = resolve_backend("tcp")
        try:
            assert isinstance(backend, TcpBackend) and owned
        finally:
            backend.close()

    def test_matrix_covers_every_backend(self):
        assert [row[0] for row in backend_matrix()] == list(BACKEND_NAMES)


# ----------------------------------------------------------------------
# The JobSpec wire codec
# ----------------------------------------------------------------------

class TestSpecCodec:
    def test_round_trip_preserves_identity(self):
        for spec in tiny_specs(("radix", "LU"), ("MESI", "DBypFull")):
            clone = spec_from_dict(spec_to_dict(spec))
            assert clone == spec
            assert clone.store_key() == spec.store_key()
            assert clone.job_key() == spec.job_key()

    def test_round_trip_survives_json(self):
        spec = tiny_specs()[0]
        wire = json.loads(json.dumps(spec_to_dict(spec)))
        assert spec_from_dict(wire) == spec

    def test_from_dict_revalidates(self):
        payload = spec_to_dict(tiny_specs()[0])
        payload["config"] = dict(payload["config"], num_tiles=7)
        with pytest.raises(ValueError):
            spec_from_dict(payload)     # 7 tiles is not a square mesh


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------

class TestWire:
    def pair(self):
        a, b = socket.socketpair()
        return a, b

    def test_round_trip(self):
        a, b = self.pair()
        try:
            send_msg(a, {"type": "hello", "n": [1, 2, 3]})
            assert recv_msg(b) == {"type": "hello", "n": [1, 2, 3]}
        finally:
            a.close(), b.close()

    def test_clean_eof_is_none(self):
        a, b = self.pair()
        a.close()
        try:
            assert recv_msg(b) is None
        finally:
            b.close()

    def test_truncated_frame_raises(self):
        a, b = self.pair()
        try:
            a.sendall((1000).to_bytes(4, "big") + b"x" * 10)
            a.close()
            with pytest.raises(WireError):
                recv_msg(b)
        finally:
            b.close()

    def test_oversized_frame_rejected(self):
        a, b = self.pair()
        try:
            a.sendall((MAX_FRAME + 1).to_bytes(4, "big"))
            with pytest.raises(WireError):
                recv_msg(b)
        finally:
            a.close(), b.close()

    def test_parse_endpoint(self):
        assert parse_endpoint("10.0.0.1:7421") == ("10.0.0.1", 7421)
        assert parse_endpoint(":7421") == ("127.0.0.1", 7421)
        for bad in ("nope", "host:", "host:abc"):
            with pytest.raises(ValueError):
                parse_endpoint(bad)


# ----------------------------------------------------------------------
# Cross-backend bit-identity (the acceptance contract)
# ----------------------------------------------------------------------

class TestBitIdentity:
    def test_serial_pool_tcp_byte_equal(self, tmp_path):
        """serial, pool(2 jobs) and tcp(2 real loopback workers) write
        byte-equal store files under identical store keys."""
        specs = tiny_specs()
        blobs = {}
        results = {}

        store = ResultStore(tmp_path / "serial")
        outcomes = sweep(specs, store=store, backend="serial")
        blobs["serial"] = store_blob(store)
        results["serial"] = [result_to_dict(o.result) for o in outcomes]

        store = ResultStore(tmp_path / "pool")
        outcomes = sweep(specs, jobs=2, store=store, backend="pool")
        blobs["pool"] = store_blob(store)
        results["pool"] = [result_to_dict(o.result) for o in outcomes]

        backend = TcpBackend(connect_grace=30.0)
        workers = [spawn_worker(backend.listen()) for _ in range(2)]
        try:
            store = ResultStore(tmp_path / "tcp")
            outcomes = sweep(specs, store=store, backend=backend)
            blobs["tcp"] = store_blob(store)
            results["tcp"] = [result_to_dict(o.result) for o in outcomes]
            stats = dict(backend.stats)
        finally:
            backend.close()
            for worker in workers:
                worker.communicate(timeout=30)
        assert stats["workers_connected"] == 2
        assert stats["worker_cells"] == len(specs)
        assert stats["serial_cells"] == 0

        # Identical store keys: the same file-name set everywhere.
        names = {frozenset(b) for b in blobs.values()}
        assert len(names) == 1, blobs.keys()
        # Bit-identity: byte-equal cell files and result payloads.
        assert blobs["serial"] == blobs["pool"] == blobs["tcp"]
        assert results["serial"] == results["pool"] == results["tcp"]

    def test_backend_axis_never_enters_store_keys(self):
        spec = tiny_specs()[0]
        # A spec knows nothing about backends: its key is a pure
        # function of (workload, protocol, scale, config, seed).
        assert "backend" not in spec_to_dict(spec)


# ----------------------------------------------------------------------
# tcp fault tolerance
# ----------------------------------------------------------------------

def steal_one_lease(address, got_lease, after):
    """Fake worker: steal a single lease, then misbehave via ``after``."""
    sock = socket.create_connection(address, timeout=10.0)
    try:
        send_msg(sock, {"type": "hello", "worker": "fake"})
        while True:
            send_msg(sock, {"type": "steal"})
            msg = recv_msg(sock)
            if msg is None or msg.get("type") == "shutdown":
                return
            if msg.get("type") == "lease":
                got_lease.set()
                after(sock)
                return
            time.sleep(0.02)
    finally:
        try:
            sock.close()
        except OSError:
            pass


class TestTcpFaults:
    def run_with_fake(self, after, lease_timeout):
        specs = tiny_specs(protocols=("MESI",))
        backend = TcpBackend(lease_timeout=lease_timeout,
                             connect_grace=0.2)
        got_lease = threading.Event()
        fake = threading.Thread(
            target=steal_one_lease,
            args=(backend.listen(), got_lease, after), daemon=True)
        fake.start()
        try:
            outcomes = backend.run_specs(specs)
            assert got_lease.wait(timeout=1.0)
            stats = dict(backend.stats)
        finally:
            backend.close()
            fake.join(timeout=5.0)
        assert [o.result.protocol for o in outcomes] == ["MESI"]
        return stats

    def test_lease_timeout_reassigns(self):
        """A worker that takes a lease and never heartbeats loses it:
        the lease expires, the connection is fenced, and the cell is
        requeued (here: drained serially) — the sweep still finishes."""
        def go_silent(sock):
            # Hold the lease without heartbeats until the coordinator
            # fences us (recv unblocks with EOF).
            recv_msg(sock)

        stats = self.run_with_fake(go_silent, lease_timeout=0.3)
        assert stats["leases_reassigned"] == 1
        assert stats["serial_cells"] == 1
        assert stats["worker_cells"] == 0

    def test_worker_death_requeues(self):
        """A worker that dies mid-lease (socket closes) has its leased
        cells requeued immediately — no lease-timeout wait needed."""
        def drop_dead(sock):
            sock.close()

        stats = self.run_with_fake(drop_dead, lease_timeout=30.0)
        assert stats["leases_granted"] == 1
        assert stats["serial_cells"] == 1
        assert stats["worker_cells"] == 0

    def test_no_workers_degrades_to_serial(self, tmp_path):
        specs = tiny_specs(protocols=("MESI",))
        backend = TcpBackend(connect_grace=0.1)
        try:
            store = ResultStore(tmp_path)
            outcomes = sweep(specs, store=store, backend=backend)
            assert backend.stats["serial_cells"] == len(specs)
            assert backend.stats["workers_connected"] == 0
        finally:
            backend.close()
        reference = sweep(specs, store=ResultStore(tmp_path / "ref"))
        assert ([result_to_dict(o.result) for o in outcomes]
                == [result_to_dict(o.result) for o in reference])

    def test_closed_backend_refuses_listen(self):
        backend = TcpBackend()
        backend.listen()
        backend.close()
        with pytest.raises(RuntimeError):
            backend.listen()

"""Unit tests for the set-associative cache array."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.sa_cache import CacheLine, SetAssocCache


class TestBasics:
    def test_miss_then_hit(self):
        c = SetAssocCache(num_sets=4, assoc=2)
        assert c.lookup(10) is None
        line, victim = c.allocate(10)
        assert victim is None
        assert c.lookup(10) is line

    def test_set_index(self):
        c = SetAssocCache(num_sets=4, assoc=2)
        assert c.set_index(10) == 2
        assert c.set_index(14) == 2

    def test_lru_eviction(self):
        c = SetAssocCache(num_sets=1, assoc=2)
        c.allocate(0)
        c.allocate(1)
        c.lookup(0)           # 0 becomes MRU
        _line, victim = c.allocate(2)
        assert victim.line_addr == 1

    def test_lookup_without_touch_keeps_lru(self):
        c = SetAssocCache(num_sets=1, assoc=2)
        c.allocate(0)
        c.allocate(1)
        c.lookup(0, touch=False)   # 0 stays LRU
        _line, victim = c.allocate(2)
        assert victim.line_addr == 0

    def test_allocate_existing_refreshes(self):
        c = SetAssocCache(num_sets=1, assoc=2)
        first, _ = c.allocate(0)
        c.allocate(1)
        again, victim = c.allocate(0)
        assert again is first and victim is None
        _line, victim = c.allocate(2)
        assert victim.line_addr == 1

    def test_victim_for(self):
        c = SetAssocCache(num_sets=1, assoc=2)
        c.allocate(0)
        assert c.victim_for(1) is None      # free way
        c.allocate(1)
        assert c.victim_for(2).line_addr == 0
        assert c.victim_for(0) is None      # already resident

    def test_remove(self):
        c = SetAssocCache(num_sets=2, assoc=2)
        c.allocate(0)
        removed = c.remove(0)
        assert removed.line_addr == 0
        assert c.lookup(0) is None
        assert c.remove(0) is None

    def test_occupancy_and_resident(self):
        c = SetAssocCache(num_sets=2, assoc=2)
        for addr in (0, 1, 2):
            c.allocate(addr)
        assert c.occupancy() == 3
        assert {l.line_addr for l in c.resident_lines()} == {0, 1, 2}

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssocCache(num_sets=0, assoc=1)

    def test_custom_line_factory(self):
        class MyLine(CacheLine):
            __slots__ = ("extra",)

            def __init__(self, line_addr):
                super().__init__(line_addr)
                self.extra = 42

        c = SetAssocCache(1, 1, MyLine)
        line, _ = c.allocate(7)
        assert line.extra == 42


class TestCacheLine:
    def test_fresh_line_state(self):
        line = CacheLine(5)
        assert not line.any_dirty()
        assert line.dirty_offsets() == []

    def test_dirty_tracking(self):
        line = CacheLine(5)
        line.word_dirty[3] = True
        line.word_dirty[7] = True
        assert line.any_dirty()
        assert line.dirty_offsets() == [3, 7]

    def test_reset_words(self):
        line = CacheLine(5)
        line.word_state[0] = 2
        line.word_dirty[0] = True
        line.mem_inst[0] = object()
        line.reset_words()
        assert line.word_state[0] == 0
        assert not line.word_dirty[0]
        assert line.mem_inst[0] is None


class TestCacheProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=300),
           st.integers(min_value=1, max_value=8),
           st.integers(min_value=1, max_value=8))
    def test_occupancy_never_exceeds_capacity(self, addrs, sets, assoc):
        c = SetAssocCache(sets, assoc)
        for addr in addrs:
            c.allocate(addr)
        assert c.occupancy() <= sets * assoc
        for s in range(sets):
            in_set = [l for l in c.resident_lines()
                      if c.set_index(l.line_addr) == s]
            assert len(in_set) <= assoc

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1,
                    max_size=200))
    def test_most_recent_k_always_resident(self, addrs):
        """With a single set, the last `assoc` distinct addresses hit."""
        assoc = 4
        c = SetAssocCache(1, assoc)
        for addr in addrs:
            c.allocate(addr)
        distinct_recent = []
        for addr in reversed(addrs):
            if addr not in distinct_recent:
                distinct_recent.append(addr)
            if len(distinct_recent) == assoc:
                break
        for addr in distinct_recent:
            assert c.lookup(addr, touch=False) is not None

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1,
                    max_size=100))
    def test_victim_matches_allocate(self, addrs):
        """victim_for predicts what allocate evicts."""
        a = SetAssocCache(2, 2)
        b = SetAssocCache(2, 2)
        for addr in addrs:
            a.allocate(addr)
            predicted = b.victim_for(addr)
            _line, actual = b.allocate(addr)
            if predicted is None:
                assert actual is None
            else:
                assert actual is predicted

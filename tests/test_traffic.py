"""Unit tests for the flit-hop traffic ledger."""

import pytest

from repro.network import traffic as T
from repro.waste.profiler import Category, ProfileEntry


def used_entry():
    e = ProfileEntry()
    e.classify(Category.USED)
    return e


def waste_entry(cat=Category.EVICT):
    e = ProfileEntry()
    e.classify(cat)
    return e


class TestControlTraffic:
    def test_request_ctl(self):
        led = T.TrafficLedger()
        led.add_request_ctl(T.LD, hops=3)
        led.add_request_ctl(T.LD, hops=2)
        led.finalize()
        assert led.bucket(T.LD, T.REQ_CTL) == 5

    def test_request_ctl_rejects_wb(self):
        led = T.TrafficLedger()
        with pytest.raises(ValueError):
            led.add_request_ctl(T.WB, hops=1)

    def test_overhead_subtypes(self):
        led = T.TrafficLedger()
        led.add_overhead(T.OVH_UNBLOCK, hops=2)
        led.add_overhead(T.OVH_NACK, hops=3)
        led.add_overhead(T.OVH_BLOOM, hops=2, flits=5)
        led.finalize()
        assert led.bucket(T.OVH, T.OVH_UNBLOCK) == 2
        assert led.bucket(T.OVH, T.OVH_NACK) == 3
        assert led.bucket(T.OVH, T.OVH_BLOOM) == 10
        assert led.major_total(T.OVH) == 15

    def test_unknown_overhead_rejected(self):
        led = T.TrafficLedger()
        with pytest.raises(ValueError):
            led.add_overhead("mystery", hops=1)


class TestDataTraffic:
    def test_full_flit_all_used(self):
        led = T.TrafficLedger()
        entries = [used_entry() for _ in range(4)]
        flits = led.add_data_words(T.LD, T.DEST_L1, hops=2, entries=entries)
        assert flits == 1
        led.finalize()
        assert led.bucket(T.LD, T.RESP_L1_USED) == pytest.approx(2.0)
        assert led.bucket(T.LD, T.RESP_L1_WASTE) == 0

    def test_mixed_verdicts_split_fractionally(self):
        led = T.TrafficLedger()
        entries = [used_entry(), used_entry(), waste_entry(), waste_entry()]
        led.add_data_words(T.ST, T.DEST_L2, hops=4, entries=entries)
        led.finalize()
        assert led.bucket(T.ST, T.RESP_L2_USED) == pytest.approx(2.0)
        assert led.bucket(T.ST, T.RESP_L2_WASTE) == pytest.approx(2.0)

    def test_unfilled_tail_goes_to_resp_ctl(self):
        """5 words over 2 hops: 2 data flits; 3 unfilled slots -> resp ctl."""
        led = T.TrafficLedger()
        led.add_data_words(T.LD, T.DEST_L1, hops=2,
                           entries=[used_entry() for _ in range(5)])
        led.finalize()
        assert led.bucket(T.LD, T.RESP_L1_USED) == pytest.approx(5 * 0.5)
        assert led.bucket(T.LD, T.RESP_CTL) == pytest.approx(3 * 0.5)

    def test_data_plus_slack_equals_flits_times_hops(self):
        led = T.TrafficLedger()
        n, hops = 7, 3
        flits = led.add_data_words(T.LD, T.DEST_L1, hops=hops,
                                   entries=[used_entry()] * n)
        led.finalize()
        total = (led.bucket(T.LD, T.RESP_L1_USED)
                 + led.bucket(T.LD, T.RESP_CTL))
        assert total == pytest.approx(flits * hops)

    def test_empty_payload(self):
        led = T.TrafficLedger()
        assert led.add_data_words(T.LD, T.DEST_L1, 3, []) == 0

    def test_verdict_resolved_at_finalize(self):
        """Entries classified after send still resolve correctly."""
        led = T.TrafficLedger()
        entry = ProfileEntry()
        led.add_data_words(T.LD, T.DEST_L1, hops=1, entries=[entry] * 4)
        entry.classify(Category.USED)
        led.finalize()
        assert led.bucket(T.LD, T.RESP_L1_USED) == pytest.approx(1.0)


class TestWritebackTraffic:
    def test_dirty_clean_split(self):
        led = T.TrafficLedger()
        led.add_wb_data_words(T.DEST_L2, hops=2,
                              dirty_flags=[True, True, False, False])
        led.finalize()
        assert led.bucket(T.WB, T.WB_L2_USED) == pytest.approx(1.0)
        assert led.bucket(T.WB, T.WB_L2_WASTE) == pytest.approx(1.0)

    def test_mem_destination(self):
        led = T.TrafficLedger()
        led.add_wb_data_words(T.DEST_MEM, hops=4, dirty_flags=[True] * 16)
        led.finalize()
        assert led.bucket(T.WB, T.WB_MEM_USED) == pytest.approx(16.0)
        assert led.bucket(T.WB, T.WB_MEM_WASTE) == 0

    def test_partial_flit_slack_to_control(self):
        led = T.TrafficLedger()
        led.add_wb_data_words(T.DEST_MEM, hops=4, dirty_flags=[True] * 3)
        led.finalize()
        assert led.bucket(T.WB, T.WB_CONTROL) == pytest.approx(1.0)

    def test_l1_destination_rejected(self):
        led = T.TrafficLedger()
        with pytest.raises(ValueError):
            led.add_wb_data_words(T.DEST_L1, 1, [True])


class TestFinalization:
    def test_queries_require_finalize(self):
        led = T.TrafficLedger()
        with pytest.raises(RuntimeError):
            led.total()

    def test_totals(self):
        led = T.TrafficLedger()
        led.add_request_ctl(T.LD, 3)
        led.add_response_ctl(T.LD, 3)
        led.add_data_words(T.LD, T.DEST_L1, 3, [used_entry()] * 4)
        led.add_overhead(T.OVH_ACK, 1)
        led.finalize()
        assert led.total() == pytest.approx(3 + 3 + 3 + 1)
        assert led.major_total(T.LD) == pytest.approx(9)

    def test_breakdown_is_copy(self):
        led = T.TrafficLedger()
        led.add_request_ctl(T.LD, 1)
        led.finalize()
        bd = led.breakdown()
        bd[T.LD][T.REQ_CTL] = 999
        assert led.bucket(T.LD, T.REQ_CTL) == 1

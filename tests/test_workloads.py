"""Structural tests for the six benchmark trace generators.

These validate the pattern features the paper's analysis depends on,
without running the simulator.
"""

import pytest

from repro.common.config import ScaleConfig, scaled_system
from repro.workloads import (
    GENERATORS, WORKLOAD_ORDER, build_all, build_workload)
from repro.workloads.barnes import BODY_STRIDE
from repro.workloads.trace import OP_BARRIER, OP_COMPUTE, OP_LOAD, OP_STORE

SCALE = ScaleConfig.tiny()


@pytest.fixture(scope="module")
def workloads():
    return build_all(SCALE)


class TestAllWorkloads:
    def test_order_matches_paper(self):
        assert WORKLOAD_ORDER == ("fluidanimate", "LU", "FFT", "radix",
                                  "barnes", "kD-tree")

    def test_sixteen_cores(self, workloads):
        for w in workloads.values():
            assert w.num_cores == 16

    def test_all_have_ops_on_every_core_at_default_scale(self):
        """At the default scale every core does real work.  (At the tiny
        unit-test scale LU's 2D block scatter can leave cores idle.)"""
        for name in WORKLOAD_ORDER:
            w = build_workload(name)
            for core, trace in enumerate(w.traces):
                mem_ops = sum(1 for k, _ in trace
                              if k in (OP_LOAD, OP_STORE))
                assert mem_ops > 0, f"{name} core {core} has no memory ops"

    def test_all_addresses_belong_to_regions(self, workloads):
        for name, w in workloads.items():
            for trace in w.traces:
                for kind, arg in trace:
                    if kind in (OP_LOAD, OP_STORE):
                        assert w.regions.find(arg) is not None, (
                            f"{name}: address {arg} outside all regions")

    def test_deterministic_generation(self):
        a = build_workload("barnes", SCALE)
        b = build_workload("barnes", SCALE)
        assert a.traces == b.traces

    def test_case_insensitive_lookup(self):
        w = build_workload("RADIX", SCALE)
        assert w.name == "radix"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            build_workload("linpack", SCALE)

    def test_warmup_barriers_set(self, workloads):
        for name, w in workloads.items():
            assert 0 < w.warmup_barriers < w.num_barriers, name

    def test_written_regions_per_barrier(self, workloads):
        for w in workloads.values():
            assert len(w.phase_written_regions) >= w.num_barriers


class TestBypassAnnotations:
    """The paper bypasses fluidanimate, FFT, radix and kD-tree only."""

    def test_bypass_apps_have_bypass_regions(self, workloads):
        for name in ("fluidanimate", "FFT", "radix", "kD-tree"):
            regions = workloads[name].regions
            assert any(r.bypass_l2 for r in regions), name

    def test_non_bypass_apps_have_none(self, workloads):
        for name in ("LU", "barnes"):
            regions = workloads[name].regions
            assert not any(r.bypass_l2 for r in regions), name


class TestFlexAnnotations:
    """Flex is applicable to barnes and kD-tree only (Section 5.2.1)."""

    def test_flex_apps(self, workloads):
        for name in ("barnes", "kD-tree"):
            regions = workloads[name].regions
            assert any(r.flex is not None for r in regions), name

    def test_non_flex_apps(self, workloads):
        for name in ("fluidanimate", "LU", "FFT", "radix"):
            regions = workloads[name].regions
            assert not any(r.flex is not None for r in regions), name

    def test_barnes_phase_updates_change_flex(self, workloads):
        """barnes re-announces its communication region between phases
        (the source of the paper's Excess waste)."""
        w = workloads["barnes"]
        updates = [u for us in w.phase_region_updates.values() for u in us]
        patterns = {u.flex.field_offsets for u in updates
                    if u.flex is not None}
        assert len(patterns) >= 2

    def test_barnes_stride_not_line_multiple(self):
        """The paper stresses barnes structs are not padded to lines."""
        assert BODY_STRIDE % 16 != 0


class TestWorkingSets:
    def test_bypass_apps_exceed_l2(self):
        """Bypass only matters when the data set exceeds the L2
        (paper Section 5.2.1); checked at the default small scale."""
        scale = ScaleConfig()
        cfg = scaled_system(scale)
        l2_words = cfg.l2_slice_kb * 1024 // 4 * cfg.num_tiles
        for name in ("FFT", "radix", "kD-tree", "fluidanimate"):
            w = build_workload(name, scale)
            footprint = sum(r.size_words for r in w.regions)
            assert footprint > l2_words, (
                f"{name} footprint {footprint} fits in L2 {l2_words}")

    def test_small_l2_apps_fit(self):
        """LU and barnes have small L2 working sets (Section 5.3)."""
        scale = ScaleConfig()
        cfg = scaled_system(scale)
        l2_words = cfg.l2_slice_kb * 1024 // 4 * cfg.num_tiles
        for name in ("LU", "barnes"):
            w = build_workload(name, scale)
            footprint = sum(r.size_words for r in w.regions)
            assert footprint <= 1.5 * l2_words, name


class TestRadixStructure:
    def test_permutation_spreads_over_buckets(self, workloads):
        """The permutation writes must target many distinct lines."""
        w = workloads["radix"]
        dst = next(r for r in w.regions if r.name == "radix.dst")
        store_lines = set()
        for trace in w.traces:
            for kind, arg in trace:
                if kind == OP_STORE and dst.contains(arg):
                    store_lines.add(arg // 16)
        assert len(store_lines) >= SCALE.radix_buckets / 8

    def test_keys_read_exactly_twice(self, workloads):
        """Histogram + permutation each read every key once per iteration
        (two iterations: warm-up + measured)."""
        w = workloads["radix"]
        keys = next(r for r in w.regions if r.name == "radix.keys")
        reads = {}
        for trace in w.traces:
            for kind, arg in trace:
                if kind == OP_LOAD and keys.contains(arg):
                    reads[arg] = reads.get(arg, 0) + 1
        # Iteration 1 reads keys (hist+permute); iteration 2 reads dst.
        assert set(reads.values()) == {2}


class TestLUStructure:
    def test_matrix_is_only_region(self, workloads):
        regions = list(workloads["LU"].regions)
        assert len(regions) == 1

    def test_triangular_reads_create_partial_line_use(self, workloads):
        """Some lines of the diagonal block are only partially read
        during the perimeter update (spatial waste source)."""
        w = build_workload("LU", SCALE)
        assert w.memory_ops() > 0


class TestFFTStructure:
    def test_transpose_writes_to_dst(self, workloads):
        w = workloads["FFT"]
        dst = next(r for r in w.regions if r.name == "fft.dst")
        writes = sum(1 for t in w.traces for k, a in t
                     if k == OP_STORE and dst.contains(a))
        # Transpose writes every dst word once; the following FFT phase
        # read-modify-writes them again.
        assert writes == SCALE.fft_points * 4 * 2

"""Engine parity: the compiled engine is bit-identical to the reference.

Two layers of evidence:

* the full golden tiny-scale paper grid (6 workloads x 9 rungs = 54
  cells) re-simulated under ``engine="compiled"`` must match
  ``tests/golden/grid_tiny.json`` byte-for-byte — the same snapshot
  ``test_golden_grid.py`` pins the reference engine against, so the two
  engines are transitively pinned to each other on every counter:
  traffic flit-hops, waste taxonomies, timings, exec cycles, protocol
  stats, energy counters and the event count;
* synthetic ``stream`` traces across machine shapes the golden grid
  does not cover (2x2, 4x4, 5x5) on every rung, plus seeded ``radix``
  traces on the two rungs with fused compiled cores, simulated under
  BOTH engines in the same process and compared as full ``RunResult``
  dicts, with the event count and energy counters also asserted
  individually so a divergence localizes.

A parity failure here means a fused compiled handler drifted from the
reference protocol semantics; fix the compiled engine, never the
golden snapshot.
"""

import dataclasses
import json
from pathlib import Path
from typing import Dict

import pytest

from repro.common.config import PROTOCOL_ORDER, ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.runner.store import result_to_dict
from repro.workloads import WORKLOAD_ORDER, build_workload

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "grid_tiny.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())["grid"]

SCALE = ScaleConfig.tiny()
COMPILED_CONFIG = dataclasses.replace(scaled_system(SCALE),
                                      engine="compiled")

# Compiled-engine cells, simulated once per workload and shared by the
# bit-identity and event-count tests (deterministic, pure memoization).
_RESULTS: Dict[str, Dict[str, dict]] = {}


def _compiled_results(workload_name: str) -> Dict[str, dict]:
    cells = _RESULTS.get(workload_name)
    if cells is None:
        workload = build_workload(workload_name, SCALE)
        cells = _RESULTS[workload_name] = {
            proto: result_to_dict(simulate(workload, proto,
                                           COMPILED_CONFIG))
            for proto in PROTOCOL_ORDER}
    return cells


@pytest.mark.parametrize("workload_name", WORKLOAD_ORDER)
def test_compiled_grid_cells_bit_identical_to_golden(workload_name):
    """All 54 golden cells must reproduce under the compiled engine."""
    for proto in PROTOCOL_ORDER:
        result = _compiled_results(workload_name)[proto]
        expected = GOLDEN[workload_name][proto]
        assert result == expected, (
            f"{workload_name} x {proto} diverged from the golden result "
            f"under engine='compiled'; a fused handler drifted from the "
            f"reference semantics")


@pytest.mark.parametrize("workload_name", WORKLOAD_ORDER)
def test_compiled_grid_event_counts_pinned(workload_name):
    """The compiled engine must schedule the identical event stream."""
    for proto in PROTOCOL_ORDER:
        events = _compiled_results(workload_name)[proto]["events"]
        expected = GOLDEN[workload_name][proto]["events"]
        assert events == expected, (
            f"{workload_name} x {proto}: {events} events under "
            f"engine='compiled', golden pinned {expected}")


# ----------------------------------------------------------------------
# Synthetic traces across machine shapes (beyond the golden grid)
# ----------------------------------------------------------------------

#: Square shapes the paper grid does not pin: 2x2, 4x4 and the
#: odd-width 5x5 (non-power-of-two L2 slice rounding).
SHAPES = (4, 16, 25)

#: Radix trace-generator seeds; the non-default one reshuffles the
#: digit stream so parity is not an artifact of one access pattern.
SEEDS = (12345, 99)


def _assert_engine_parity(workload, proto, num_tiles, label):
    reference = scaled_system(SCALE, num_tiles=num_tiles)
    compiled = dataclasses.replace(reference, engine="compiled")
    ref = simulate(workload, proto, reference)
    cmp_ = simulate(workload, proto, compiled)
    # Localizing assertions first: an event-count or energy-counter
    # diff names the diverging subsystem directly.
    assert cmp_.events == ref.events, label
    assert cmp_.energy_counters == ref.energy_counters, label
    assert dataclasses.asdict(cmp_) == dataclasses.asdict(ref), label


@pytest.mark.parametrize("num_tiles", SHAPES)
def test_stream_shapes_parity_all_rungs(num_tiles):
    """Full-result equality on stream traces, every rung, each shape."""
    workload = build_workload("stream", SCALE, num_cores=num_tiles)
    for proto in PROTOCOL_ORDER:
        _assert_engine_parity(workload, proto, num_tiles,
                              f"stream x {proto} @ {num_tiles}t")


@pytest.mark.parametrize("num_tiles", SHAPES)
@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_radix_parity_fused_cores(num_tiles, seed):
    """Seeded radix traces on the rungs with fused compiled cores.

    MESI and DeNovo are the protocols the compiled engine replaces
    with fused array-pool cores; the remaining rungs run the reference
    protocol core under both engines (plumbing parity for those is
    covered by the stream-shape sweep above).
    """
    workload = build_workload("radix", SCALE, num_cores=num_tiles,
                              seed=seed)
    for proto in ("MESI", "DeNovo"):
        _assert_engine_parity(workload, proto, num_tiles,
                              f"radix x {proto} @ {num_tiles}t seed={seed}")

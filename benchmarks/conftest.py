"""Shared fixtures for the figure-regeneration benchmark harness.

The full (6 workloads x 9 protocols) sweep runs once per configuration
through the runner subsystem and lands in its durable result store
(``.repro_cache/`` or ``$REPRO_CACHE_DIR``); every benchmark then
regenerates its paper artifact from the stored grid and prints the
rows/series the paper reports.  Run with ``-s`` to see the tables:

    pytest benchmarks/ --benchmark-only -s

A cold store is repopulated on demand; set ``REPRO_JOBS`` to shard that
initial sweep across worker processes (same results, bit-identical).
"""

import os

import pytest

from repro.runner import sweep_grid


@pytest.fixture(scope="session")
def grid():
    """The full result grid at the default (small) scale."""
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    results = sweep_grid(jobs=jobs)
    # Engine sanity gate: every cell's ``events`` mirrors the event
    # queue's ``events_run`` at collection time; a cell reporting zero
    # events means the scheduler never drove the machine and whatever
    # figures follow would be regenerated from a hollow simulation.
    for workload, cells in results.items():
        for protocol, result in cells.items():
            assert result.events > 0, (
                f"{workload} x {protocol}: queue.events_run was 0")
    return results


def emit(text: str) -> None:
    """Print a regenerated table under the pytest output."""
    print()
    print(text)

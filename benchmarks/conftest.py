"""Shared fixtures for the figure-regeneration benchmark harness.

The full (6 workloads x 9 protocols) sweep is simulated once per
configuration and cached on disk (``.repro_cache/``); every benchmark
then regenerates its paper artifact from the cached grid and prints the
rows/series the paper reports.  Run with ``-s`` to see the tables:

    pytest benchmarks/ --benchmark-only -s
"""

import pytest

from repro.analysis.experiments import run_grid


@pytest.fixture(scope="session")
def grid():
    """The full result grid at the default (small) scale."""
    return run_grid()


def emit(text: str) -> None:
    """Print a regenerated table under the pytest output."""
    print()
    print(text)

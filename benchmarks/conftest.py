"""Shared fixtures for the figure-regeneration benchmark harness.

The full (6 workloads x 9 protocols) sweep runs once per configuration
through the runner subsystem and lands in its durable result store
(``.repro_cache/`` or ``$REPRO_CACHE_DIR``); every benchmark then
regenerates its paper artifact from the stored grid and prints the
rows/series the paper reports.  Run with ``-s`` to see the tables:

    pytest benchmarks/ --benchmark-only -s

A cold store is repopulated on demand; set ``REPRO_JOBS`` to shard that
initial sweep across worker processes (same results, bit-identical).
"""

import os

import pytest

from repro.runner import sweep_grid


@pytest.fixture(scope="session")
def grid():
    """The full result grid at the default (small) scale."""
    jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    return sweep_grid(jobs=jobs)


def emit(text: str) -> None:
    """Print a regenerated table under the pytest output."""
    print()
    print(text)

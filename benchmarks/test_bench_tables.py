"""T4.1 / T4.2 — regenerate the paper's configuration tables."""

from repro.analysis.figures import table_4_1, table_4_2
from repro.common.config import DEFAULT_SCALE, ScaleConfig, SystemConfig

from conftest import emit


def test_table_4_1(benchmark):
    text = benchmark(table_4_1, SystemConfig())
    emit(text)
    assert "2GHz, in-order" in text
    assert "256KB slices (4MB total)" in text
    assert "DDR3-1066, 8 banks, 2 ranks" in text


def test_table_4_2(benchmark):
    text = benchmark(table_4_2, ScaleConfig.paper())
    emit(text)
    assert "512x512 matrix, 16x16 blocks" in text
    assert "4000000 keys, 1024 radix" in text
    emit(table_4_2(DEFAULT_SCALE))

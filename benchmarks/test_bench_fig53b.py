"""F5.3b — words fetched into the L2 from memory, by waste category.

Paper shape (Section 5.3): DBypFull cuts data brought into the L2 by
~64% vs DeNovo and ~65% vs MESI, mostly thanks to the L2 response
bypass keeping streaming data out of the L2.
"""

from repro.analysis.figures import figure_5_3b
from repro.workloads import WORKLOAD_ORDER

from conftest import emit

BYPASS_APPS = ("fluidanimate", "FFT", "radix", "kD-tree")


def test_figure_5_3b(grid, benchmark):
    fig = benchmark(figure_5_3b, grid)
    emit(fig.render())

    # Bypass apps: DBypL2 moves far less data into the L2 than MESI.
    for workload in BYPASS_APPS:
        assert (fig.bar_total(workload, "DBypL2")
                < 0.6 * fig.bar_total(workload, "MESI")), workload

    # And less than the same protocol without bypass.
    for workload in BYPASS_APPS:
        assert (fig.bar_total(workload, "DBypL2")
                < fig.bar_total(workload, "DFlexL2")), workload

    # The L2 write-validate protocols stop fetching lines for writes,
    # so they never bring more into the L2 than baseline DeNovo.
    for workload in WORKLOAD_ORDER:
        assert (fig.bar_total(workload, "DValidateL2")
                <= fig.bar_total(workload, "DeNovo") + 1.0), workload

"""F5.2 — execution time breakdown (Compute / On-chip / To MC / Mem /
From MC / Sync), normalized to MESI.

Paper shapes (Section 5.1): MMemL1 is a bit faster than MESI (average
-3.8%); the fully optimized DeNovo (DBypFull) is faster than MESI on
average (paper: -10.5%); no protocol catastrophically regresses.
"""

from repro.analysis.experiments import average_exec_time_reduction
from repro.analysis.figures import figure_5_2
from repro.workloads import WORKLOAD_ORDER

from conftest import emit


def test_figure_5_2(grid, benchmark):
    fig = benchmark(figure_5_2, grid)
    emit(fig.render())

    # MMemL1 cuts memory latency: never slower than MESI by more than
    # noise, faster on average.
    mmem = average_exec_time_reduction(grid, "MMemL1", "MESI")
    assert mmem > -0.02, f"MMemL1 average exec reduction {mmem:.1%}"

    # The fully optimized protocol is faster than MESI on average
    # (paper: +10.5%).
    best = average_exec_time_reduction(grid, "DBypFull", "MESI")
    assert best > 0.0, f"DBypFull average exec reduction {best:.1%}"

    # Every bar decomposes into the six paper categories.
    for workload in WORKLOAD_ORDER:
        for proto in grid[workload]:
            segs = fig.rows[workload][proto]
            assert set(segs) == {"Compute", "On-chip Hit", "To MC", "Mem",
                                 "From MC", "Sync"}

    # Memory-bound apps show substantial memory-side stall under MESI.
    for workload in ("radix", "FFT"):
        mem_side = (fig.segment(workload, "MESI", "Mem")
                    + fig.segment(workload, "MESI", "To MC")
                    + fig.segment(workload, "MESI", "From MC"))
        assert mem_side > 10.0, workload

"""H3 — protocol overhead traffic (paper Section 5.2.4).

Paper: overhead is 13.6% of MESI's traffic / 12.1% of MMemL1's; within
MESI's overhead, ~65.3% is directory unblock messages, ~26.1% writeback
control, ~4.4% invalidations, ~4.3% acks.  DeNovo's overhead is
negligible (NACKs only); DBypFull adds ~0.5% Bloom-copy traffic for the
bypass apps.
"""

from repro.analysis.experiments import average_overhead_fraction
from repro.network import traffic as T
from repro.workloads import WORKLOAD_ORDER

from conftest import emit

BYPASS_APPS = ("fluidanimate", "FFT", "radix", "kD-tree")


def _report(grid) -> str:
    lines = ["=== Overhead traffic (Section 5.2.4) ===",
             f"MESI overhead fraction   paper 13.6%  measured "
             f"{average_overhead_fraction(grid, 'MESI'):.1%}",
             f"MMemL1 overhead fraction paper 12.1%  measured "
             f"{average_overhead_fraction(grid, 'MMemL1'):.1%}",
             f"DeNovo overhead fraction paper ~0%    measured "
             f"{average_overhead_fraction(grid, 'DeNovo'):.1%}"]
    # Decompose MESI overhead across all workloads.
    subtotal = {k: 0.0 for k in T.OVH_BUCKETS}
    for workload in WORKLOAD_ORDER:
        for key in T.OVH_BUCKETS:
            subtotal[key] += grid[workload]["MESI"].traffic_bucket(T.OVH,
                                                                   key)
    total = sum(subtotal.values()) or 1.0
    lines.append("MESI overhead mix (paper: unblock 65.3%, wb-ctl 26.1%, "
                 "inval 4.4%, ack 4.3%):")
    for key in T.OVH_BUCKETS:
        lines.append(f"  {key:8s} {subtotal[key] / total:6.1%}")
    return "\n".join(lines)


def test_overhead_traffic(grid, benchmark):
    text = benchmark(_report, grid)
    emit(text)

    mesi = average_overhead_fraction(grid, "MESI")
    assert 0.05 < mesi < 0.30, f"MESI overhead {mesi:.1%}"

    mmem = average_overhead_fraction(grid, "MMemL1")
    assert mmem < mesi, "MMemL1 must shrink overhead (unblock+data)"

    denovo = average_overhead_fraction(grid, "DeNovo")
    assert denovo < 0.03, f"DeNovo overhead {denovo:.1%}"

    # Unblock dominates MESI overhead.
    subtotal = {k: 0.0 for k in T.OVH_BUCKETS}
    for workload in WORKLOAD_ORDER:
        for key in T.OVH_BUCKETS:
            subtotal[key] += grid[workload]["MESI"].traffic_bucket(T.OVH,
                                                                   key)
    assert subtotal[T.OVH_UNBLOCK] == max(subtotal.values())
    assert subtotal[T.OVH_BLOOM] == 0.0

    # Bloom traffic exists only for DBypFull, only for bypass apps, and
    # stays a small share of that protocol's traffic.
    for workload in BYPASS_APPS:
        result = grid[workload]["DBypFull"]
        bloom = result.traffic_bucket(T.OVH, T.OVH_BLOOM)
        assert bloom > 0.0, workload
        assert bloom / result.traffic_total() < 0.10, workload
    for workload in ("LU", "barnes"):
        assert grid[workload]["DBypFull"].traffic_bucket(
            T.OVH, T.OVH_BLOOM) == 0.0, workload

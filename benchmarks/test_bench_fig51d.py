"""F5.1d — writeback traffic breakdown.

Paper shapes (Section 5.2.3): dirty-words-only L1->L2 writebacks
(all DeNovo protocols) eliminate "L2 Waste"; dirty-words-only L2->memory
writebacks (DValidateL2 onward) eliminate "Mem Waste"; MMemL1 barely
changes writeback traffic.
"""

import pytest

from repro.analysis.figures import figure_5_1d
from repro.workloads import WORKLOAD_ORDER

from conftest import emit

DIRTY_ONLY_L2 = ("DeNovo", "DFlexL1", "DValidateL2", "DMemL1", "DFlexL2",
                 "DBypL2", "DBypFull")
DIRTY_ONLY_MEM = ("DValidateL2", "DMemL1", "DFlexL2", "DBypL2", "DBypFull")


def test_figure_5_1d(grid, benchmark):
    fig = benchmark(figure_5_1d, grid)
    emit(fig.render())

    for workload in WORKLOAD_ORDER:
        # Dirty-words-only L1->L2: no clean words in writebacks.
        for proto in DIRTY_ONLY_L2:
            assert fig.segment(workload, proto, "L2 Waste") == 0.0, (
                workload, proto)
        # Dirty-words-only L2->mem.
        for proto in DIRTY_ONLY_MEM:
            assert fig.segment(workload, proto, "Mem Waste") == 0.0, (
                workload, proto)

    # MESI ships whole lines: apps with partial-line dirtiness show
    # waste in their writebacks somewhere.
    wasteful = sum(
        1 for w in WORKLOAD_ORDER
        if fig.segment(w, "MESI", "L2 Waste")
        + fig.segment(w, "MESI", "Mem Waste") > 0)
    assert wasteful >= 4

    # MMemL1 does not reduce the number of writebacks (Section 5.2.3):
    # its WB bar stays close to MESI's.
    for workload in WORKLOAD_ORDER:
        assert fig.bar_total(workload, "MMemL1") == pytest.approx(
            fig.bar_total(workload, "MESI"), rel=0.25), workload

"""Ablation — write-combining table size vs radix store-control traffic.

Paper Section 5.2.2: radix's permutation writes to 1024 lines, far more
than the 32-entry write-combining table, so DeNovo issues multiple
registration messages per line.  Growing the table recovers the
batching; shrinking it makes the blowup worse.
"""

from dataclasses import replace

import pytest

from repro.common.config import ScaleConfig, protocol, scaled_system
from repro.core.simulator import simulate
from repro.network import traffic as T
from repro.workloads import build_workload

from conftest import emit

SCALE = ScaleConfig.tiny()
TABLE_SIZES = (8, 32, 256)


@pytest.fixture(scope="module")
def sweep():
    base = scaled_system(SCALE)
    workload = build_workload("radix", SCALE)
    out = {}
    for size in TABLE_SIZES:
        config = replace(base, write_combine_entries=size)
        out[size] = simulate(workload, protocol("DeNovo"), config)
    return out


def test_write_combine_sweep(sweep, benchmark):
    def report():
        lines = ["=== Write-combining ablation (radix, DeNovo) ===",
                 f"{'entries':>8s} {'registrations':>14s} "
                 f"{'ST req ctl':>11s} {'traffic':>10s}"]
        for size, result in sweep.items():
            regs = result.protocol_stats.get("registrations", 0)
            lines.append(
                f"{size:8d} {regs:14d} "
                f"{result.traffic_bucket(T.ST, T.REQ_CTL):11.0f} "
                f"{result.traffic_total():10.0f}")
        return "\n".join(lines)

    emit(benchmark(report))

    # More table entries -> fewer registration messages (monotone).
    regs = [sweep[size].protocol_stats.get("registrations", 0)
            for size in TABLE_SIZES]
    assert regs[0] >= regs[1] >= regs[2], regs
    # The paper's blowup: a small table sends measurably more messages.
    assert regs[0] > regs[2]

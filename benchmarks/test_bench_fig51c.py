"""F5.1c — store traffic breakdown.

Paper shapes (Section 5.2.2): write-validate at the L1 removes all store
data into the L1; write-validate at the L2 removes store data into the
L2; MMemL1 removes MESI's "Resp L2 Waste"; DeNovo store *control*
traffic rises for FFT/radix/barnes/kD-tree (no E state, write-combining
limits).
"""

from repro.analysis.figures import figure_5_1c
from repro.workloads import WORKLOAD_ORDER

from conftest import emit

DENOVO_PROTOS = ("DeNovo", "DFlexL1", "DValidateL2", "DMemL1", "DFlexL2",
                 "DBypL2", "DBypFull")


def test_figure_5_1c(grid, benchmark):
    fig = benchmark(figure_5_1c, grid)
    emit(fig.render())

    # L1 write-validate: no store response data reaches any DeNovo L1.
    for workload in WORKLOAD_ORDER:
        for proto in DENOVO_PROTOS:
            l1_data = (fig.segment(workload, proto, "Resp L1 Used")
                       + fig.segment(workload, proto, "Resp L1 Waste"))
            assert l1_data == 0.0, (workload, proto)

    # L2 write-validate: no store response data reaches the L2 either.
    for workload in WORKLOAD_ORDER:
        for proto in ("DValidateL2", "DMemL1", "DFlexL2", "DBypL2",
                      "DBypFull"):
            l2_data = (fig.segment(workload, proto, "Resp L2 Used")
                       + fig.segment(workload, proto, "Resp L2 Waste"))
            assert l2_data == 0.0, (workload, proto)

    # MMemL1 removes the L2 leg of MESI store fills entirely.
    for workload in WORKLOAD_ORDER:
        assert (fig.segment(workload, "MMemL1", "Resp L2 Used")
                + fig.segment(workload, "MMemL1", "Resp L2 Waste")) == 0.0

    # DeNovo store-control blowup (Section 5.2.2): FFT's read-then-write
    # pattern gives MESI free silent E->M upgrades while DeNovo must
    # register, so DeNovo's store control clearly exceeds MESI's.  For
    # radix our MESI also pays repeated GETX after evictions, so the
    # blowup shows as near-parity rather than excess.
    assert (fig.segment("FFT", "DeNovo", "Req Ctl")
            > fig.segment("FFT", "MESI", "Req Ctl"))
    assert (fig.segment("radix", "DeNovo", "Req Ctl")
            > 0.5 * fig.segment("radix", "MESI", "Req Ctl"))

"""F5.3a — words fetched into the L1, by waste category.

Paper shape (Section 5.3): DBypFull brings ~40% fewer words into the L1
than MESI on average; the residual waste is irregular-access-pattern
Evict/Fetch waste that cannot be removed without hurting performance.
"""

from repro.analysis.figures import figure_5_3a
from repro.workloads import WORKLOAD_ORDER

from conftest import emit


def test_figure_5_3a(grid, benchmark):
    fig = benchmark(figure_5_3a, grid)
    emit(fig.render())

    # Average L1 word reduction for the full stack (paper: 39.8%).
    totals = [fig.bar_total(w, "DBypFull") for w in WORKLOAD_ORDER]
    avg = sum(totals) / len(totals)
    assert avg < 90.0, f"DBypFull average L1 words {avg:.1f}% of MESI"

    # Used words cannot exceed the bar; every protocol keeps a
    # meaningful used fraction.
    for workload in WORKLOAD_ORDER:
        for proto in grid[workload]:
            used = fig.segment(workload, proto, "Used Words")
            assert 0.0 <= used <= fig.bar_total(workload, proto) + 1e-9

    # Write-validate removes the write-waste component at the L1 for
    # DeNovo (stores never fetch).
    for workload in ("FFT", "radix", "fluidanimate"):
        assert (fig.segment(workload, "DValidateL2", "Write Waste")
                < fig.segment(workload, "MESI", "Write Waste")), workload

    # MESI's fetch-on-write makes Write waste visible for the
    # overwrite-heavy apps (Section 5.2.2).
    for workload in ("FFT", "radix", "fluidanimate"):
        assert fig.segment(workload, "MESI", "Write Waste") > 1.0, workload

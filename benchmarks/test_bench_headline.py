"""H1/H2 — the paper's Section 5.1 headline numbers.

Paper:
* DBypFull cuts traffic 39.5% vs MESI (range 22.9-64.2%), 35.2% vs
  MMemL1, 18.9% vs DFlexL1 (range 0.0-42.0%);
* baseline DeNovo cuts 13.9% vs MESI; MMemL1 cuts 6.2% vs MESI;
* execution time: DBypFull -10.5% vs MESI, -7.1% vs MMemL1, -8.6% vs
  DFlexL1; MMemL1 -3.8% vs MESI.

We assert the orderings and that each average lands in a generous band
around the paper's number (the substrate is a scaled-down simulator, so
magnitudes shift while the ranking must not).
"""

from repro.analysis.experiments import (
    average_exec_time_reduction, average_traffic_reduction,
    traffic_reduction)
from repro.workloads import WORKLOAD_ORDER

from conftest import emit


def _report(grid) -> str:
    rows = [
        ("traffic: DBypFull vs MESI", 0.395,
         average_traffic_reduction(grid, "DBypFull", "MESI")),
        ("traffic: DBypFull vs MMemL1", 0.352,
         average_traffic_reduction(grid, "DBypFull", "MMemL1")),
        ("traffic: DBypFull vs DFlexL1", 0.189,
         average_traffic_reduction(grid, "DBypFull", "DFlexL1")),
        ("traffic: DeNovo vs MESI", 0.139,
         average_traffic_reduction(grid, "DeNovo", "MESI")),
        ("traffic: MMemL1 vs MESI", 0.062,
         average_traffic_reduction(grid, "MMemL1", "MESI")),
        ("exec: DBypFull vs MESI", 0.105,
         average_exec_time_reduction(grid, "DBypFull", "MESI")),
        ("exec: MMemL1 vs MESI", 0.038,
         average_exec_time_reduction(grid, "MMemL1", "MESI")),
    ]
    lines = ["=== Headline averages (Section 5.1) ===",
             f"{'metric':34s} {'paper':>8s} {'measured':>9s}"]
    for name, paper, measured in rows:
        lines.append(f"{name:34s} {paper:7.1%} {measured:8.1%}")
    per_app = traffic_reduction(grid, "DBypFull", "MESI")
    lines.append("per-app DBypFull vs MESI: " + ", ".join(
        f"{w}={per_app[w]:.1%}" for w in WORKLOAD_ORDER))
    return "\n".join(lines)


def test_headline_traffic(grid, benchmark):
    text = benchmark(_report, grid)
    emit(text)

    # H1 — traffic reduction averages within bands around the paper.
    best_vs_mesi = average_traffic_reduction(grid, "DBypFull", "MESI")
    assert 0.25 < best_vs_mesi < 0.70
    best_vs_mmem = average_traffic_reduction(grid, "DBypFull", "MMemL1")
    assert 0.20 < best_vs_mmem < 0.65
    best_vs_flex = average_traffic_reduction(grid, "DBypFull", "DFlexL1")
    assert 0.05 < best_vs_flex < 0.55
    denovo = average_traffic_reduction(grid, "DeNovo", "MESI")
    assert 0.05 < denovo < 0.45
    mmem = average_traffic_reduction(grid, "MMemL1", "MESI")
    assert 0.0 < mmem < 0.30

    # Per-app range: every workload benefits (paper range 22.9-64.2%).
    per_app = traffic_reduction(grid, "DBypFull", "MESI")
    assert all(v > 0.05 for v in per_app.values()), per_app

    # Ranking: the ladder's endpoints are ordered.
    assert best_vs_mesi > best_vs_mmem > 0
    assert best_vs_mesi > denovo


def test_headline_exec_time(grid, benchmark):
    from repro.analysis.experiments import average_exec_time_reduction as f
    benchmark(f, grid, "DBypFull", "MESI")
    # H2 — the optimized protocols gain performance on average
    # (paper: DBypFull +10.5%, MMemL1 +3.8% vs MESI).
    best = average_exec_time_reduction(grid, "DBypFull", "MESI")
    assert best > 0.0, f"DBypFull exec reduction {best:.1%}"
    mmem = average_exec_time_reduction(grid, "MMemL1", "MESI")
    assert mmem > -0.02, f"MMemL1 exec reduction {mmem:.1%}"
    # The paper's big per-app winners still win.
    from repro.analysis.experiments import exec_time_reduction
    per_app = exec_time_reduction(grid, "DBypFull", "MESI")
    assert per_app["fluidanimate"] > 0.0
    assert per_app["radix"] > 0.0

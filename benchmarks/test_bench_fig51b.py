"""F5.1b — load traffic breakdown (req/resp control, L1/L2 used/waste)."""

from repro.analysis.figures import figure_5_1b
from repro.workloads import WORKLOAD_ORDER

from conftest import emit


def test_figure_5_1b(grid, benchmark):
    fig = benchmark(figure_5_1b, grid)
    emit(fig.render())

    # Flex cuts load traffic for barnes and kD-tree (paper: -32.4% /
    # -43.5% vs DeNovo for DFlexL1/DFlexL2).
    for workload in ("barnes", "kD-tree"):
        assert (fig.bar_total(workload, "DFlexL1")
                < fig.bar_total(workload, "DeNovo")), workload

    # L2 Response Bypass cuts load traffic for the bypass apps
    # (paper: average -28.8% vs DFlexL2).
    for workload in ("fluidanimate", "FFT", "radix", "kD-tree"):
        assert (fig.bar_total(workload, "DBypL2")
                < fig.bar_total(workload, "DFlexL2")), workload

    # L2 Request Bypass trims request control further for bypass apps
    # (paper: average -5.2% of load traffic vs DBypL2).
    for workload in ("fluidanimate", "FFT", "radix", "kD-tree"):
        assert (fig.segment(workload, "DBypFull", "Req Ctl")
                <= fig.segment(workload, "DBypL2", "Req Ctl")), workload

    # Bypassed responses skip the L2, so DBypL2 moves almost no
    # load data into the L2 for the streaming apps.
    for workload in ("FFT", "radix"):
        l2_data = (fig.segment(workload, "DBypL2", "Resp L2 Used")
                   + fig.segment(workload, "DBypL2", "Resp L2 Waste"))
        mesi_l2 = (fig.segment(workload, "MESI", "Resp L2 Used")
                   + fig.segment(workload, "MESI", "Resp L2 Waste"))
        assert l2_data < mesi_l2 * 0.5, workload

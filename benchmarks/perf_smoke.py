#!/usr/bin/env python3
"""Perf smoke: time a tiny-scale radix x {MESI, DeNovo} sweep.

Runs the cells in-process, serially and cache-free (so the numbers are
pure simulation speed, not store hits), and writes a small JSON record —
``BENCH_sweep.json`` by default — that CI uploads as a workflow
artifact.  Comparing the artifact across commits gives the perf
trajectory of the simulator hot path without a full benchmark session.

The record carries three trend metrics:

* per-cell seconds and events/second (simulator hot path);
* ``cells_per_second`` over the whole smoke, including one
  non-default-shape cell (4-tile 2x2 machine) so the machine-shape
  layer stays on the trajectory;
* ``trace_memo`` — the speedup the pool workers' built-trace memo
  delivers per cell (a memoized cell skips the trace rebuild, so its
  cost is simulation only).

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.common.config import ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.workloads import build_workload

WORKLOAD = "radix"
PROTOCOLS = ("MESI", "DeNovo")
SCALE = "tiny"
#: The extra machine shape exercised each run (the paper's is 16).
EXTRA_TILES = 4


def run() -> dict:
    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    t_build = time.perf_counter()
    workload = build_workload(WORKLOAD, scale)
    build_s = time.perf_counter() - t_build

    cells = []
    for proto in PROTOCOLS:
        t0 = time.perf_counter()
        result = simulate(workload, proto, config)
        elapsed = time.perf_counter() - t0
        cells.append({
            "workload": WORKLOAD,
            "protocol": proto,
            "num_tiles": config.num_tiles,
            "seconds": round(elapsed, 4),
            "events": result.events,
            "events_per_second": round(result.events / elapsed, 1),
            "exec_cycles": result.exec_cycles,
        })

    # One non-default-shape cell, timed like the others (prebuilt
    # trace, simulate() only) so its events/second stays comparable
    # across the cells and across commits.
    shape_config = scaled_system(scale, num_tiles=EXTRA_TILES)
    shape_workload = build_workload(WORKLOAD, scale,
                                    num_cores=EXTRA_TILES)
    t0 = time.perf_counter()
    shape_result = simulate(shape_workload, PROTOCOLS[0], shape_config)
    shape_s = time.perf_counter() - t0
    cells.append({
        "workload": WORKLOAD,
        "protocol": PROTOCOLS[0],
        "num_tiles": EXTRA_TILES,
        "seconds": round(shape_s, 4),
        "events": shape_result.events,
        "events_per_second": round(shape_result.events / shape_s, 1),
        "exec_cycles": shape_result.exec_cycles,
    })

    total_s = sum(c["seconds"] for c in cells)
    mean_sim = sum(c["seconds"] for c in cells[:len(PROTOCOLS)]) / len(
        PROTOCOLS)
    return {
        "bench": f"sweep_{WORKLOAD}_{SCALE}",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "trace_build_seconds": round(build_s, 4),
        "total_seconds": round(total_s, 4),
        "cells_per_second": round(len(cells) / total_s, 3),
        # The pool workers memoize built traces per (workload, scale,
        # num_cores, seed): every cell after the first of a (workload,
        # shape) run costs sim-only instead of build+sim.
        "trace_memo": {
            "build_seconds": round(build_s, 4),
            "mean_sim_seconds": round(mean_sim, 4),
            "speedup_per_memoized_cell":
                round((build_s + mean_sim) / mean_sim, 2) if mean_sim else 0.0,
        },
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output JSON path (default: BENCH_sweep.json)")
    ns = parser.parse_args(argv)
    record = run()
    with open(ns.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {ns.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

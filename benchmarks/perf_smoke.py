#!/usr/bin/env python3
"""Perf smoke: time a tiny-scale radix x {MESI, DeNovo} sweep.

Thin script wrapper around :mod:`repro.bench` (also reachable as
``python -m repro bench``).  Runs the smoke cells in-process, serially
and cache-free (so the numbers are pure simulation speed, not store
hits), timing each cell under both execution engines and both event
schedulers — interleaved, with per-cell medians and full bit-identity
asserted — and writes a ``BENCH_new.json`` record carrying
``schema_version`` and a ``git_describe`` stamp.  CI compares the fresh
record against the committed repo-root baseline with
``tools/bench_compare.py`` and uploads it as a workflow artifact.

Also sanity-checks the warm-worker machinery: the measured warm
(memoized-trace) cell time must beat the cold (build + simulate) cell
time, or the trace memo is not actually saving work.

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench import run_smoke, write_record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    # The default differs from the committed repo-root BENCH_sweep.json
    # baseline so a bare run cannot clobber it.
    parser.add_argument("--out", default="BENCH_new.json",
                        help="output JSON path (default: BENCH_new.json)")
    ns = parser.parse_args(argv)
    record = run_smoke()
    memo = record["trace_memo"]
    assert memo["warm_cell_seconds"] < memo["cold_cell_seconds"], (
        f"warm (memoized) cell took {memo['warm_cell_seconds']}s vs "
        f"{memo['cold_cell_seconds']}s cold — the trace memo is not "
        f"saving work")
    write_record(record, ns.out)
    print(json.dumps(record, indent=2))
    print(f"wrote {ns.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Perf smoke: time a tiny-scale radix x {MESI, DeNovo} sweep.

Runs the two cells in-process, serially and cache-free (so the number is
pure simulation speed, not store hits), and writes a small JSON record —
``BENCH_sweep.json`` by default — that CI uploads as a workflow
artifact.  Comparing the artifact across commits gives the perf
trajectory of the simulator hot path without a full benchmark session.

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.common.config import ScaleConfig, scaled_system
from repro.core.simulator import simulate
from repro.workloads import build_workload

WORKLOAD = "radix"
PROTOCOLS = ("MESI", "DeNovo")
SCALE = "tiny"


def run() -> dict:
    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    t_build = time.perf_counter()
    workload = build_workload(WORKLOAD, scale)
    build_s = time.perf_counter() - t_build

    cells = []
    for proto in PROTOCOLS:
        t0 = time.perf_counter()
        result = simulate(workload, proto, config)
        elapsed = time.perf_counter() - t0
        cells.append({
            "workload": WORKLOAD,
            "protocol": proto,
            "seconds": round(elapsed, 4),
            "events": result.events,
            "events_per_second": round(result.events / elapsed, 1),
            "exec_cycles": result.exec_cycles,
        })
    return {
        "bench": f"sweep_{WORKLOAD}_{SCALE}",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "trace_build_seconds": round(build_s, 4),
        "total_seconds": round(sum(c["seconds"] for c in cells), 4),
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output JSON path (default: BENCH_sweep.json)")
    ns = parser.parse_args(argv)
    record = run()
    with open(ns.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {ns.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

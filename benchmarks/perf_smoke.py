#!/usr/bin/env python3
"""Perf smoke: time a tiny-scale radix x {MESI, DeNovo} sweep.

Runs the cells in-process, serially and cache-free (so the numbers are
pure simulation speed, not store hits), and writes a small JSON record —
``BENCH_sweep.json`` by default — that CI uploads as a workflow
artifact.  Comparing the artifact across commits gives the perf
trajectory of the simulator hot path without a full benchmark session.

The record carries four trend metrics:

* per-cell seconds and events/second (simulator hot path);
* ``cells_per_second`` over the whole smoke, including one
  non-default-shape cell (4-tile 2x2 machine) so the machine-shape
  layer stays on the trajectory;
* ``trace_memo`` — the speedup the pool workers' built-trace memo
  delivers per cell (a memoized cell skips the trace rebuild, so its
  cost is simulation only);
* ``energy_derivation`` — wall time to derive the post-hoc energy
  breakdown of every cell under every registered technology preset,
  asserted to stay below 5% of the sweep's simulation time (energy is
  supposed to be free relative to simulating).

Run:  PYTHONPATH=src python benchmarks/perf_smoke.py [--out FILE]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time

from repro.common.config import (
    ScaleConfig, registered_energy_models, scaled_system)
from repro.core.simulator import simulate
from repro.energy import compute_energy
from repro.workloads import build_workload

WORKLOAD = "radix"
PROTOCOLS = ("MESI", "DeNovo")
SCALE = "tiny"
#: The extra machine shape exercised each run (the paper's is 16).
EXTRA_TILES = 4

#: Post-hoc energy derivation must stay below this fraction of the
#: sweep's simulation wall time (it is pure arithmetic over counters).
ENERGY_OVERHEAD_BUDGET = 0.05


def run() -> dict:
    scale = ScaleConfig.tiny()
    config = scaled_system(scale)
    t_build = time.perf_counter()
    workload = build_workload(WORKLOAD, scale)
    build_s = time.perf_counter() - t_build

    cells = []
    results = []
    for proto in PROTOCOLS:
        t0 = time.perf_counter()
        result = simulate(workload, proto, config)
        elapsed = time.perf_counter() - t0
        results.append((result, config))
        cells.append({
            "workload": WORKLOAD,
            "protocol": proto,
            "num_tiles": config.num_tiles,
            "seconds": round(elapsed, 4),
            "events": result.events,
            "events_per_second": round(result.events / elapsed, 1),
            "exec_cycles": result.exec_cycles,
        })

    # One non-default-shape cell, timed like the others (prebuilt
    # trace, simulate() only) so its events/second stays comparable
    # across the cells and across commits.
    shape_config = scaled_system(scale, num_tiles=EXTRA_TILES)
    shape_workload = build_workload(WORKLOAD, scale,
                                    num_cores=EXTRA_TILES)
    t0 = time.perf_counter()
    shape_result = simulate(shape_workload, PROTOCOLS[0], shape_config)
    shape_s = time.perf_counter() - t0
    cells.append({
        "workload": WORKLOAD,
        "protocol": PROTOCOLS[0],
        "num_tiles": EXTRA_TILES,
        "seconds": round(shape_s, 4),
        "events": shape_result.events,
        "events_per_second": round(shape_result.events / shape_s, 1),
        "exec_cycles": shape_result.exec_cycles,
    })

    # Energy-derivation cell: price every simulated cell under every
    # registered preset, post hoc.  This must be cheap — it is the whole
    # point of a counter-driven model — so assert the budget here, where
    # CI runs it on every commit.
    results.append((shape_result, shape_config))
    presets = registered_energy_models()
    t0 = time.perf_counter()
    derivations = 0
    for cell_result, cell_config in results:
        for preset in presets:
            compute_energy(cell_result, preset, cell_config)
            derivations += 1
    energy_s = time.perf_counter() - t0

    total_s = sum(c["seconds"] for c in cells)
    overhead = energy_s / total_s if total_s else 0.0
    assert overhead < ENERGY_OVERHEAD_BUDGET, (
        f"post-hoc energy derivation took {energy_s:.4f}s = "
        f"{overhead:.1%} of the {total_s:.4f}s sweep (budget "
        f"{ENERGY_OVERHEAD_BUDGET:.0%})")
    mean_sim = sum(c["seconds"] for c in cells[:len(PROTOCOLS)]) / len(
        PROTOCOLS)
    return {
        "bench": f"sweep_{WORKLOAD}_{SCALE}",
        "python": platform.python_version(),
        "platform": platform.platform(),
        "trace_build_seconds": round(build_s, 4),
        "total_seconds": round(total_s, 4),
        "cells_per_second": round(len(cells) / total_s, 3),
        # The pool workers memoize built traces per (workload, scale,
        # num_cores, seed): every cell after the first of a (workload,
        # shape) run costs sim-only instead of build+sim.
        "trace_memo": {
            "build_seconds": round(build_s, 4),
            "mean_sim_seconds": round(mean_sim, 4),
            "speedup_per_memoized_cell":
                round((build_s + mean_sim) / mean_sim, 2) if mean_sim else 0.0,
        },
        # Post-hoc energy model: pure arithmetic over stored counters,
        # so derivation cost must stay a rounding error next to
        # simulation (asserted above against ENERGY_OVERHEAD_BUDGET).
        "energy_derivation": {
            "derivations": derivations,
            "presets": list(presets),
            "seconds": round(energy_s, 4),
            "fraction_of_sweep": round(overhead, 5),
            "budget": ENERGY_OVERHEAD_BUDGET,
        },
        "cells": cells,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_sweep.json",
                        help="output JSON path (default: BENCH_sweep.json)")
    ns = parser.parse_args(argv)
    record = run()
    with open(ns.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(json.dumps(record, indent=2))
    print(f"wrote {ns.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Microbenchmarks of the simulator substrates (pytest-benchmark).

These time the hot building blocks — mesh routing, DRAM scheduling,
Bloom filters, cache arrays, waste profiling — so performance
regressions in the simulator itself are visible.
"""

import random

from repro.bloom.filters import H3Hash, SliceFilterBank
from repro.cache.sa_cache import SetAssocCache
from repro.common.config import SystemConfig
from repro.dram.model import DramChannel
from repro.engine.events import EventQueue
from repro.network.mesh import Mesh
from repro.network.traffic import DEST_L1, LD, TrafficLedger
from repro.waste.profiler import CacheLevelProfiler, MemoryProfiler

CFG = SystemConfig()


def test_mesh_latency(benchmark):
    mesh = Mesh(CFG)
    pairs = [(i % 16, (i * 7 + 3) % 16) for i in range(256)]

    def run():
        total = 0
        for src, dst in pairs:
            total += mesh.latency(src, dst, 5, now=0)
        return total

    assert benchmark(run) > 0


def test_dram_channel_throughput(benchmark):
    def run():
        queue = EventQueue()
        dram = DramChannel(CFG, queue)
        done = []
        for i in range(200):
            dram.read(i * 3, done.append)
        queue.run()
        return len(done)

    assert benchmark(run) == 200


def test_bloom_filter_bank(benchmark):
    bank = SliceFilterBank(32, 512, 1, seed=1)
    lines = [i * 13 for i in range(500)]

    def run():
        for line in lines:
            bank.insert(line)
        hits = sum(1 for line in lines if bank.may_contain(line))
        for line in lines:
            bank.remove(line)
        return hits

    assert benchmark(run) == 500


def test_cache_allocate_lookup(benchmark):
    rng = random.Random(1)
    addrs = [rng.randrange(4096) for _ in range(2000)]

    def run():
        cache = SetAssocCache(64, 8)
        hits = 0
        for addr in addrs:
            if cache.lookup(addr) is not None:
                hits += 1
            else:
                cache.allocate(addr)
        return hits

    assert benchmark(run) > 0


def test_profiler_churn(benchmark):
    def run():
        prof = CacheLevelProfiler("L1")
        for word in range(2000):
            prof.on_arrival(0, word, already_present=False)
            if word % 3 == 0:
                prof.on_use(0, word)
            elif word % 3 == 1:
                prof.on_evict(0, word)
        prof.finalize()
        return prof.total_words()

    assert benchmark(run) == 2000


def test_traffic_ledger_data_words(benchmark):
    def run():
        prof = MemoryProfiler()
        ledger = TrafficLedger()
        for i in range(200):
            entries = [prof.fetch(i * 16 + w, False) for w in range(16)]
            ledger.add_data_words(LD, DEST_L1, hops=3, entries=entries)
        prof.finalize()
        ledger.finalize()
        return ledger.total()

    assert benchmark(run) > 0

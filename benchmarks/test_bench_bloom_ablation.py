"""Ablation — Bloom filter geometry vs request-bypass effectiveness.

DESIGN.md Section 9: the paper sizes its filters "idealized"; this
ablation sweeps the geometry on radix and checks the expected monotone
trend (bigger filters -> fewer false positives -> at least as many
direct-to-memory requests) and the storage/benefit trade-off the paper
discusses in Sections 3.1 and 5.2.1.
"""

from dataclasses import replace

import pytest

from repro.common.config import ScaleConfig, protocol, scaled_system
from repro.core.simulator import simulate
from repro.workloads import build_workload

from conftest import emit

SCALE = ScaleConfig.tiny()
GEOMETRIES = ((32, 2), (128, 2), (512, 8))   # (entries, filters/slice)


@pytest.fixture(scope="module")
def sweep():
    base = scaled_system(SCALE)
    workload = build_workload("radix", SCALE)
    out = {}
    for entries, filters in GEOMETRIES:
        config = replace(base, bloom_entries=entries,
                         bloom_filters_per_slice=filters)
        out[(entries, filters)] = simulate(workload, protocol("DBypFull"),
                                           config)
    return out


def test_bloom_geometry_sweep(sweep, benchmark):
    def report():
        lines = ["=== Bloom geometry ablation (radix, DBypFull) ===",
                 f"{'entries':>8s} {'filters':>8s} {'direct%':>8s} "
                 f"{'traffic':>10s}"]
        for (entries, filters), result in sweep.items():
            stats = result.protocol_stats
            queries = max(stats.get("bypass_queries", 0), 1)
            rate = stats.get("direct_requests", 0) / queries
            lines.append(f"{entries:8d} {filters:8d} {rate:8.1%} "
                         f"{result.traffic_total():10.0f}")
        return "\n".join(lines)

    emit(benchmark(report))

    # Direct-request rate is monotone non-decreasing in filter size.
    rates = []
    for geometry in GEOMETRIES:
        stats = sweep[geometry].protocol_stats
        rates.append(stats.get("direct_requests", 0)
                     / max(stats.get("bypass_queries", 0), 1))
    assert rates == sorted(rates), rates

    # Even the smallest geometry keeps the protocol functional.
    assert all(r.exec_cycles > 0 for r in sweep.values())

"""H4 — residual waste in the fully optimized protocol (Section 5.3).

Paper: 8.8% of DBypFull's remaining traffic moves non-useful data, down
from far more under MESI; the residue comes from irregular access
patterns (fluidanimate's under-filled slots, LU's triangular blocks,
barnes' conditional fields, kD-tree's dynamic pointer pairs) and cannot
be removed without losing performance.
"""

from repro.analysis.experiments import average_waste_fraction
from repro.waste.profiler import Category
from repro.workloads import WORKLOAD_ORDER

from conftest import emit


def _report(grid) -> str:
    lines = ["=== Residual traffic waste (Section 5.3) ===",
             f"{'protocol':12s} {'waste share of traffic':>24s}"]
    for proto in ("MESI", "MMemL1", "DeNovo", "DFlexL1", "DBypFull"):
        lines.append(f"{proto:12s} {average_waste_fraction(grid, proto):>23.1%}")
    lines.append("(paper: DBypFull leaves 8.8% of its traffic as waste)")
    return "\n".join(lines)


def test_residual_waste(grid, benchmark):
    text = benchmark(_report, grid)
    emit(text)

    mesi = average_waste_fraction(grid, "MESI")
    best = average_waste_fraction(grid, "DBypFull")
    # The optimization stack removes most, but not all, wasted movement.
    assert best < mesi * 0.75
    assert 0.01 < best < 0.30, f"DBypFull residual waste {best:.1%}"


def test_irregular_residuals(grid, benchmark):
    benchmark(lambda: None)
    """The residual waste has the causes the paper names."""
    # fluidanimate: under-filled particle slots -> Evict waste survives
    # every optimization.
    fluid = grid["fluidanimate"]["DBypFull"]
    assert fluid.l1_waste[Category.EVICT] > 0

    # kD-tree / barnes: Flex's cross-line gathering re-delivers words
    # already present -> Fetch waste at the L1 (Section 5.3).
    for workload in ("barnes", "kD-tree"):
        assert grid[workload]["DBypFull"].l1_waste[Category.FETCH] > 0, (
            workload)

    # MESI wastes more words at the L1 than DBypFull on every workload.
    for workload in WORKLOAD_ORDER:
        mesi = grid[workload]["MESI"]
        best = grid[workload]["DBypFull"]
        mesi_waste = sum(v for c, v in mesi.l1_waste.items()
                         if c is not Category.USED)
        best_waste = sum(v for c, v in best.l1_waste.items()
                         if c is not Category.USED)
        assert best_waste < mesi_waste, workload

"""F5.3c — words fetched from memory, by waste category (plus Excess).

Paper shapes (Section 5.3): DValidateL2 fetches ~19% fewer words than
MESI; the L2-Flex protocols *increase* memory words for barnes and
kD-tree because the controller reads whole lines and drops non-region
words (Excess waste — 60.3% / 66.1% of those apps' memory traffic in
the paper).
"""

from repro.analysis.figures import figure_5_3c
from repro.waste.profiler import Category
from repro.workloads import WORKLOAD_ORDER

from conftest import emit


def test_figure_5_3c(grid, benchmark):
    fig = benchmark(figure_5_3c, grid)
    emit(fig.render())

    # Only the L2-Flex protocols produce Excess waste, and only for the
    # Flex apps (barnes, kD-tree).
    for workload in WORKLOAD_ORDER:
        for proto in ("MESI", "MMemL1", "DeNovo", "DFlexL1",
                      "DValidateL2", "DMemL1"):
            assert fig.segment(workload, proto, "Excess Waste") == 0.0, (
                workload, proto)
    # kD-tree demonstrates the effect strongly (paper: 66.1% of its
    # memory traffic).  At this scale barnes fits the L2 after warm-up
    # and generates no measured memory traffic at all, so its Excess is
    # structurally zero (see EXPERIMENTS.md, "Known deviations").
    assert fig.segment("kD-tree", "DFlexL2", "Excess Waste") > 5.0
    for workload in ("fluidanimate", "LU", "FFT", "radix"):
        assert fig.segment(workload, "DFlexL2", "Excess Waste") == 0.0, (
            workload)

    # Excess inflates the Flex apps' memory-word bars above the
    # Flex-free protocol (paper: barnes/kD-tree memory traffic rises).
    assert (fig.bar_total("kD-tree", "DFlexL2")
            > fig.bar_total("kD-tree", "DMemL1"))

    # Write-validate cuts memory fetches (paper: DValidateL2 -18.9% avg).
    totals_dv = [fig.bar_total(w, "DValidateL2") for w in WORKLOAD_ORDER]
    avg_dv = sum(totals_dv) / len(totals_dv)
    assert avg_dv < 95.0, f"DValidateL2 average memory words {avg_dv:.1f}%"

"""F5.1a — overall network traffic, all protocols x all workloads.

Shape expectations from the paper (Section 5.1): every optimized DeNovo
protocol beats MESI; MMemL1 is a modest improvement; the fully optimized
DBypFull gives a large average reduction (paper: 39.5%, range 22.9-64.2%).
"""

from repro.analysis.experiments import average_traffic_reduction
from repro.analysis.figures import figure_5_1a
from repro.common.config import PROTOCOL_ORDER
from repro.workloads import WORKLOAD_ORDER

from conftest import emit


def test_figure_5_1a(grid, benchmark):
    fig = benchmark(figure_5_1a, grid)
    emit(fig.render())

    # MESI bars are the 100% baseline.
    import pytest
    for workload in WORKLOAD_ORDER:
        assert fig.bar_total(workload, "MESI") == pytest.approx(100.0)

    # Every workload: the fully optimized protocol cuts traffic a lot.
    for workload in WORKLOAD_ORDER:
        assert fig.bar_total(workload, "DBypFull") < 85.0, workload

    # MMemL1 never increases traffic (paper: average 6.2% reduction).
    for workload in WORKLOAD_ORDER:
        assert fig.bar_total(workload, "MMemL1") <= 100.5, workload

    # Baseline DeNovo already removes MESI overhead + false sharing.
    for workload in WORKLOAD_ORDER:
        assert (fig.bar_total(workload, "DeNovo")
                < fig.bar_total(workload, "MESI")), workload

    # Flex helps only barnes and kD-tree (Section 5.2.1).
    for workload in ("barnes", "kD-tree"):
        assert (fig.bar_total(workload, "DFlexL1")
                < fig.bar_total(workload, "DeNovo") - 0.5), workload
    for workload in ("fluidanimate", "LU", "FFT", "radix"):
        assert abs(fig.bar_total(workload, "DFlexL1")
                   - fig.bar_total(workload, "DeNovo")) < 2.0, workload

    # L2-response bypass helps the four bypass apps (Section 5.2.1).
    for workload in ("fluidanimate", "FFT", "radix", "kD-tree"):
        assert (fig.bar_total(workload, "DBypL2")
                < fig.bar_total(workload, "DFlexL2")), workload

    # Headline: average reduction in a generous band around 39.5%.
    avg = average_traffic_reduction(grid, "DBypFull", "MESI")
    assert 0.25 < avg < 0.75, f"average DBypFull reduction {avg:.1%}"
